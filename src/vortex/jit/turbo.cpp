// Threaded-code binary translation for the turbo tier (see turbo.hpp for
// the tier contract). Structure:
//
//   TurboCore::lookup(pc)     block cache: start PC -> TranslatedBlock
//   TurboCore::translate(pc)  decode a straight-line run of guest words
//                             into per-instruction handler pointers, ending
//                             at the first control-flow/SIMT instruction
//   TurboCore::run_warp(w)    dispatch loop: execute block bodies through
//                             the handler pointers, resolve terminators,
//                             and hop to the successor block through the
//                             chain pointers (cache lookup only on a cold
//                             edge or a dynamic target)
//
// Warp scheduling is run-to-block: each warp executes until it hits a
// barrier, deactivates, or errors; the core round-robins over runnable
// warps until none is active. This reorders memory operations relative to
// the cycle-exact interleaving, which is safe for output digests because
// the generated code's cross-warp side effects are commutative (AMOs; no
// LR/SC is emitted) — the property the -O0/-O2 digest differential already
// relies on. All per-instruction semantics below copy vortex/core.cpp's
// expression forms verbatim so register/memory results are bit-identical.
#include "vortex/jit/turbo.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace fgpu::vortex::jit {
namespace {

using arch::Instr;
using arch::Op;

// Straight-line translation cap: a block longer than this is split, ending
// without a terminator and falling through to its successor.
constexpr size_t kMaxBlockInstrs = 256;

int32_t as_i32(uint32_t v) { return static_cast<int32_t>(v); }

// Copied from vortex/core.cpp so conversion saturation is bit-identical.
uint32_t fcvt_w_s(float f, bool is_unsigned) {
  if (std::isnan(f)) {
    return is_unsigned ? 0xFFFFFFFFu : 0x7FFFFFFFu;
  }
  if (is_unsigned) {
    if (f <= -1.0f) return 0;
    if (f >= 4294967296.0f) return 0xFFFFFFFFu;
    return static_cast<uint32_t>(f);
  }
  if (f <= -2147483648.0f) return 0x80000000u;
  if (f >= 2147483648.0f) return 0x7FFFFFFFu;
  return static_cast<uint32_t>(static_cast<int32_t>(f));
}

// Terminators end a translated block: everything that can move a warp's PC
// or scheduling state. ECALL/FENCE/memory ops stay in the block body.
bool is_terminator(Op op) {
  switch (op) {
    case Op::kJal:
    case Op::kJalr:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kTmc:
    case Op::kWspawn:
    case Op::kSplit:
    case Op::kJoin:
    case Op::kPred:
    case Op::kBar:
      return true;
    default:
      return false;
  }
}

// Static jump target of a terminator (PC-relative immediates); 0 for the
// dynamic ones (JALR, JOIN's else-side PC comes off the IPDOM stack).
uint32_t static_take_pc(const Instr& in, uint32_t pc) {
  switch (in.op) {
    case Op::kJal:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kSplit:
    case Op::kJoin:
    case Op::kPred:
      return pc + static_cast<uint32_t>(in.imm);
    default:
      return 0;
  }
}

}  // namespace

class TurboCore {
 public:
  struct TranslatedBlock;

  // One translated guest instruction: the decoded form plus its
  // precomputed handler — the "threaded code" unit of dispatch.
  struct TI {
    void (*fn)(TurboCore&, uint32_t, const TI&) = nullptr;
    Instr instr;
    uint32_t pc = 0;
    uint8_t fast = 0;  // FastOp dispatch code; 0 = dispatch through fn
  };

  struct TranslatedBlock {
    uint32_t start_pc = 0;
    std::vector<TI> body;  // straight-line, non-control-flow
    // Guest instructions the body represents. Exceeds body.size() when the
    // constant-fusion peephole merged adjacent guest instructions into one
    // TI — retirement counts (stats, instret CSR, budget) stay exact.
    uint32_t body_retired = 0;
    Instr term;            // valid when has_term
    uint32_t term_pc = 0;
    bool has_term = false;  // false: capped block, plain fallthrough
    uint32_t fall_pc = 0;   // next PC when the terminator is not taken
    uint32_t take_pc = 0;   // static jump target (0 = dynamic or none)
    // Chained dispatch: resolved successors, so hot edges skip the cache.
    TranslatedBlock* next_fall = nullptr;
    TranslatedBlock* next_take = nullptr;
  };

  TurboCore(const Config& config, uint32_t core_id, mem::MainMemory& gmem,
            EcallHandler& ecall_handler, TurboStats& stats)
      : config_(config),
        core_id_(core_id),
        gmem_(gmem),
        ecall_handler_(ecall_handler),
        stats_(stats),
        warps_(config.warps),
        xregs_(config.warps * config.threads * 32, 0),
        fregs_(config.warps * config.threads * 32, 0),
        barrier_arrived_(32, 0),
        barrier_expected_(32, 0) {}

  void invalidate() {
    bool any = false;
    for (const auto& [kernel, cache] : caches_) any |= !cache.empty();
    caches_.clear();
    blocks_ = &caches_[active_kernel_];
    if (any) ++stats_.invalidations;
  }

  // Silent variant of invalidate() for the device-reuse boundary
  // (TurboDevice::reset between benchmarks): the drop is lifecycle
  // bookkeeping, not a kernel reload, so it must not perturb the
  // invalidations counter — per-benchmark jit-stat deltas stay identical
  // between a pooled device and a fresh one. Also deselects the kernel so
  // the next build starts from a construction-state cache map.
  void clear_blocks() {
    caches_.clear();
    active_kernel_.clear();
    blocks_ = &caches_[active_kernel_];
  }

  // Switches the active block cache to `kernel`'s. Each kernel of a build
  // keeps its own cache, so alternating launches (gaussian's Fan1/Fan2)
  // re-enter warm caches instead of re-translating; only build()'s
  // invalidate() drops translations.
  void select_kernel(const std::string& kernel) {
    if (kernel == active_kernel_) return;
    active_kernel_ = kernel;
    blocks_ = &caches_[kernel];
  }

  void reset(uint32_t entry_pc) {
    for (auto& warp : warps_) warp = TWarp{};
    std::fill(xregs_.begin(), xregs_.end(), 0u);
    std::fill(fregs_.begin(), fregs_.end(), 0u);
    std::fill(barrier_arrived_.begin(), barrier_arrived_.end(), 0u);
    std::fill(barrier_expected_.begin(), barrier_expected_.end(), 0u);
    local_mem_.clear();
    tlb_.fill(TlbEntry{});  // local pages were just dropped
    instret_ = 0;
    error_ = Status::ok();
    warps_[0].active = true;
    warps_[0].pc = entry_pc;
    warps_[0].tmask = 1;
  }

  // Runs every warp to completion; `run_instrs` is the launch-wide retired
  // counter shared across cores, checked against `budget`.
  Status run(uint64_t* run_instrs, uint64_t budget) {
    run_instrs_ = run_instrs;
    budget_ = budget;
    for (;;) {
      bool progressed = false;
      for (uint32_t w = 0; w < config_.warps; ++w) {
        if (!warps_[w].active || warps_[w].at_barrier) continue;
        progressed = true;
        if (!run_warp(w)) return error_;
      }
      bool any_active = false;
      for (const auto& warp : warps_) any_active |= warp.active;
      if (!any_active) return Status::ok();
      if (!progressed) {
        return Status(ErrorKind::kRuntimeError,
                      "turbo: barrier deadlock on core " + std::to_string(core_id_) +
                          " (every active warp is blocked)");
      }
    }
  }

  // --- register file --------------------------------------------------------
  // Register-major ("structure of arrays") layout, unlike core.cpp's
  // lane-major one: register r of lane l lives at [(warp*32 + r)*threads + l],
  // so one warp-instruction's operand rows are contiguous runs of `threads`
  // words — the layout the lane loops need to autovectorize. Purely an
  // internal representation choice; values are bit-identical.
  uint32_t& xr(uint32_t warp, uint32_t lane, uint32_t index) {
    return xregs_[(warp * 32 + index) * config_.threads + lane];
  }
  uint32_t& fr(uint32_t warp, uint32_t lane, uint32_t index) {
    return fregs_[(warp * 32 + index) * config_.threads + lane];
  }
  // Warp-base pointers for the handler hot paths: register row r starts at
  // base[r * threads]. Hoisting the base (and a local Instr copy) out of the
  // lane loop matters because register stores are uint32_t writes, which
  // TBAA says may alias config_ fields and Instr bytes — without the locals
  // the compiler must re-derive addresses from memory every lane.
  uint32_t* xwarp(uint32_t w) { return xregs_.data() + w * 32 * config_.threads; }
  uint32_t* fwarp(uint32_t w) { return fregs_.data() + w * 32 * config_.threads; }
  uint32_t nthreads() const { return config_.threads; }

  template <typename Fn>
  void lanes(uint32_t w, Fn&& fn) {
    const uint64_t mask = warps_[w].tmask;
    // Full-mask fast path with a compile-time bound: the dominant case is
    // every lane of an 8-thread warp active, and the constant-8 loop lets
    // the compiler unroll the handler body with no per-lane mask tests.
    if (mask == 0xFFull && config_.threads == 8) {
      for (uint32_t lane = 0; lane < 8; ++lane) fn(lane);
      return;
    }
    // Partial masks (divergence, scalar prologues with tmask=1) iterate set
    // bits only — the trip count is the active-lane count, not the warp
    // width, which is what makes scalar-heavy kernels cheap.
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      fn(static_cast<uint32_t>(__builtin_ctzll(m)));
    }
  }

  uint32_t first_active_lane(uint64_t mask) const {
    return mask != 0 ? static_cast<uint32_t>(__builtin_ctzll(mask)) : 0;
  }

  // True when every lane of an 8-thread warp is active — the precondition
  // of both the lanes() constant-8 loop and the coalesced memory fast path
  // in the word load/store handlers.
  bool full8(uint32_t w) const { return warps_[w].tmask == 0xFFull && config_.threads == 8; }

  uint32_t read_csr(uint32_t csr, uint32_t warp_id, uint32_t lane) const {
    switch (csr) {
      case arch::kCsrThreadId: return lane;
      case arch::kCsrWarpId: return warp_id;
      case arch::kCsrCoreId: return core_id_;
      case arch::kCsrTmask: return static_cast<uint32_t>(warps_[warp_id].tmask);
      case arch::kCsrNumThreads: return config_.threads;
      case arch::kCsrNumWarps: return config_.warps;
      case arch::kCsrNumCores: return config_.cores;
      // Functional tier: no cycle model. Instret counts this core's retired
      // instructions, as in the cycle simulator.
      case arch::kCsrCycle: return 0;
      case arch::kCsrInstret: return static_cast<uint32_t>(instret_);
      default: return 0;
    }
  }

  bool is_local_addr(uint32_t addr) const {
    return addr >= arch::kLocalBase && addr < arch::kLocalBase + arch::kLocalSize;
  }
  mem::MainMemory& memory_for(uint32_t addr) {
    return is_local_addr(addr) ? local_mem_ : gmem_;
  }

  // Software TLB over MainMemory's sparse 64 KiB pages: the dominant cost of
  // a functional memory op is the per-access page-map hash lookup, so cache
  // page pointers direct-mapped by page index. Page tags are full 32-bit
  // addresses, so local vs. global routing is already baked into the tag.
  // Reset per launch (local_mem_ is cleared then); page storage is otherwise
  // stable until MainMemory::clear().
  uint8_t* page(uint32_t addr) {
    const uint32_t tag = addr >> mem::MainMemory::kPageBits;
    TlbEntry& entry = tlb_[tag & (kTlbSize - 1)];
    if (entry.tag != tag) {
      entry.tag = tag;
      entry.data = memory_for(addr).page_data(addr);
    }
    return entry.data;
  }
  static constexpr uint32_t kPageMask = mem::MainMemory::kPageSize - 1;

  uint32_t load32(uint32_t addr) {
    if ((addr & kPageMask) <= kPageMask - 3) [[likely]] {
      uint32_t v;
      std::memcpy(&v, page(addr) + (addr & kPageMask), 4);
      return v;
    }
    return memory_for(addr).load32(addr);  // page-straddling access
  }
  uint16_t load16(uint32_t addr) {
    if ((addr & kPageMask) <= kPageMask - 1) [[likely]] {
      uint16_t v;
      std::memcpy(&v, page(addr) + (addr & kPageMask), 2);
      return v;
    }
    return memory_for(addr).load16(addr);
  }
  uint8_t load8(uint32_t addr) { return page(addr)[addr & kPageMask]; }
  void store32(uint32_t addr, uint32_t v) {
    if ((addr & kPageMask) <= kPageMask - 3) [[likely]] {
      std::memcpy(page(addr) + (addr & kPageMask), &v, 4);
      return;
    }
    memory_for(addr).store32(addr, v);
  }
  void store16(uint32_t addr, uint16_t v) {
    if ((addr & kPageMask) <= kPageMask - 1) [[likely]] {
      std::memcpy(page(addr) + (addr & kPageMask), &v, 2);
      return;
    }
    memory_for(addr).store16(addr, v);
  }
  void store8(uint32_t addr, uint8_t v) { page(addr)[addr & kPageMask] = v; }

  void do_ecall(uint32_t w) {
    ++stats_.ecalls;
    lanes(w, [&](uint32_t l) {
      if (ecall_handler_) {
        ecall_handler_(EcallRequest{core_id_, w, l, xr(w, l, 17), xr(w, l, 10)}, gmem_);
      }
    });
  }

  uint64_t tmask(uint32_t w) const { return warps_[w].tmask; }

 private:
  struct IpdomEntry {
    enum Kind : uint8_t { kUniform, kElse, kRestore };
    Kind kind;
    uint64_t mask;
    uint32_t pc;
  };

  struct TWarp {
    bool active = false;
    uint32_t pc = 0;
    uint64_t tmask = 0;
    std::vector<IpdomEntry> ipdom;
    bool at_barrier = false;
    uint32_t barrier_id = 0;
  };

  TranslatedBlock* lookup(uint32_t pc) {
    ++stats_.block_lookups;
    auto it = blocks_->find(pc);
    if (it != blocks_->end()) {
      ++stats_.block_hits;
      return it->second.get();
    }
    return translate(pc);
  }

  TranslatedBlock* translate(uint32_t start_pc);

  TranslatedBlock* next_fall(TranslatedBlock* blk) {
    if (blk->next_fall != nullptr) {
      ++stats_.chained_dispatches;
      return blk->next_fall;
    }
    return blk->next_fall = lookup(blk->fall_pc);
  }
  TranslatedBlock* next_take(TranslatedBlock* blk) {
    if (blk->next_take != nullptr) {
      ++stats_.chained_dispatches;
      return blk->next_take;
    }
    return blk->next_take = lookup(blk->take_pc);
  }

  void barrier_arrive(uint32_t warp_id, uint32_t id, uint32_t count) {
    TWarp& warp = warps_[warp_id];
    warp.at_barrier = true;
    warp.barrier_id = id;
    barrier_expected_[id] = count;
    ++barrier_arrived_[id];
    ++stats_.barriers;
    if (barrier_arrived_[id] >= barrier_expected_[id]) {
      for (auto& other : warps_) {
        if (other.at_barrier && other.barrier_id == id) other.at_barrier = false;
      }
      barrier_arrived_[id] = 0;
    }
  }

  // Dispatch loop: returns false when error_ is set (budget, deadlock
  // cannot happen here). Returning true means the warp blocked or retired.
  bool run_warp(uint32_t w);

  const Config& config_;
  uint32_t core_id_;
  mem::MainMemory& gmem_;
  mem::MainMemory local_mem_;  // per-core OpenCL __local scratchpad
  EcallHandler& ecall_handler_;
  TurboStats& stats_;

  std::vector<TWarp> warps_;
  std::vector<uint32_t> xregs_;  // [warp][thread][32], as in core.cpp
  std::vector<uint32_t> fregs_;
  std::vector<uint32_t> barrier_arrived_;
  std::vector<uint32_t> barrier_expected_;
  uint64_t instret_ = 0;

  static constexpr uint32_t kTlbSize = 64;  // power of two
  struct TlbEntry {
    uint32_t tag = 0xFFFFFFFFu;  // no valid page has index 0xFFFF
    uint8_t* data = nullptr;
  };
  std::array<TlbEntry, kTlbSize> tlb_;

  // Block caches, one per kernel name: start PC -> translated block.
  // Binaries share a load base, so PCs from different kernels must never
  // share a cache; keeping them separate (instead of flushing on kernel
  // switch) is what makes alternating-kernel launch sequences warm.
  // unique_ptr storage keeps chain pointers stable as a map grows; chains
  // never cross caches because lookup/translate only touch the active one.
  // Invalidated wholesale at the kernel-reload boundary
  // (TurboEngine::invalidate, i.e. device build()).
  using BlockCache = std::unordered_map<uint32_t, std::unique_ptr<TranslatedBlock>>;
  std::unordered_map<std::string, BlockCache> caches_;
  std::string active_kernel_;
  BlockCache* blocks_ = &caches_[active_kernel_];

  uint64_t* run_instrs_ = nullptr;
  uint64_t budget_ = 0;
  Status error_;
};

namespace {

using TI = TurboCore::TI;
using Handler = void (*)(TurboCore&, uint32_t, const TI&);

// Hot-path handlers as named functions: the handler table points at them
// like any other op, but translate() also tags their instructions with a
// FastOp code so run_warp can dispatch them through an inline switch.
// always_inline because the whole point is folding the op body into the
// dispatch loop; the out-of-line copies still back the handler table.
#define FGPU_TURBO_HOT inline __attribute__((always_inline))
FGPU_TURBO_HOT void exec_Lui(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = static_cast<uint32_t>(in.imm) << 12;
      });
    }

FGPU_TURBO_HOT void exec_Auipc(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; const uint32_t ipc = i.pc; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = ipc + (static_cast<uint32_t>(in.imm) << 12);
      });
    }

FGPU_TURBO_HOT void exec_Addi(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] + static_cast<uint32_t>(in.imm);
      });
    }

FGPU_TURBO_HOT void exec_Andi(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] & static_cast<uint32_t>(in.imm);
      });
    }

FGPU_TURBO_HOT void exec_Ori(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] | static_cast<uint32_t>(in.imm);
      });
    }

FGPU_TURBO_HOT void exec_Xori(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] ^ static_cast<uint32_t>(in.imm);
      });
    }

FGPU_TURBO_HOT void exec_Slli(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] << in.imm;
      });
    }

FGPU_TURBO_HOT void exec_Srli(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] >> in.imm;
      });
    }

FGPU_TURBO_HOT void exec_Srai(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] =
            static_cast<uint32_t>(as_i32(xp_rs1[l]) >> in.imm);
      });
    }

FGPU_TURBO_HOT void exec_Slti(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = as_i32(xp_rs1[l]) < in.imm ? 1 : 0;
      });
    }

FGPU_TURBO_HOT void exec_Sltiu(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] =
            xp_rs1[l] < static_cast<uint32_t>(in.imm) ? 1 : 0;
      });
    }

FGPU_TURBO_HOT void exec_Add(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] + xp_rs2[l];
      });
    }

FGPU_TURBO_HOT void exec_Sub(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] - xp_rs2[l];
      });
    }

FGPU_TURBO_HOT void exec_And(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] & xp_rs2[l];
      });
    }

FGPU_TURBO_HOT void exec_Or(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] | xp_rs2[l];
      });
    }

FGPU_TURBO_HOT void exec_Xor(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] ^ xp_rs2[l];
      });
    }

FGPU_TURBO_HOT void exec_Sll(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] << (xp_rs2[l] & 31);
      });
    }

FGPU_TURBO_HOT void exec_Srl(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] >> (xp_rs2[l] & 31);
      });
    }

FGPU_TURBO_HOT void exec_Sra(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = static_cast<uint32_t>(as_i32(xp_rs1[l]) >>
                                                       (xp_rs2[l] & 31));
      });
    }

FGPU_TURBO_HOT void exec_Slt(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] =
            as_i32(xp_rs1[l]) < as_i32(xp_rs2[l]) ? 1 : 0;
      });
    }

FGPU_TURBO_HOT void exec_Sltu(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] < xp_rs2[l] ? 1 : 0;
      });
    }

FGPU_TURBO_HOT void exec_Mul(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = xp_rs1[l] * xp_rs2[l];
      });
    }

FGPU_TURBO_HOT void exec_FaddS(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(u2f(fp_rs1[l]) + u2f(fp_rs2[l]));
      });
    }

FGPU_TURBO_HOT void exec_FsubS(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(u2f(fp_rs1[l]) - u2f(fp_rs2[l]));
      });
    }

FGPU_TURBO_HOT void exec_FmulS(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(u2f(fp_rs1[l]) * u2f(fp_rs2[l]));
      });
    }

FGPU_TURBO_HOT void exec_FmaddS(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T; uint32_t* const fp_rs3 = fw + in.rs3 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] = f2u(u2f(fp_rs1[l]) * u2f(fp_rs2[l]) +
                                     u2f(fp_rs3[l]));
      });
    }

FGPU_TURBO_HOT void exec_FcvtSW(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] = f2u(static_cast<float>(as_i32(xp_rs1[l])));
      });
    }

FGPU_TURBO_HOT void exec_FcvtSWu(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] = f2u(static_cast<float>(xp_rs1[l]));
      });
    }

FGPU_TURBO_HOT void exec_FcvtWS(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = fcvt_w_s(u2f(fp_rs1[l]), false);
      });
    }

FGPU_TURBO_HOT void exec_FmvWX(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const xp_rs1 = xw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) { fp_rd[l] = xp_rs1[l]; });
    }

FGPU_TURBO_HOT void exec_FmvXW(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) { xp_rd[l] = fp_rs1[l]; });
    }

FGPU_TURBO_HOT void exec_FsgnjS(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            (fp_rs1[l] & 0x7FFFFFFFu) | (fp_rs2[l] & 0x80000000u);
      });
    }

FGPU_TURBO_HOT void exec_FltS(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] =
            u2f(fp_rs1[l]) < u2f(fp_rs2[l]) ? 1 : 0;
      });
    }

// Coalesced warp word access: GPU kernels overwhelmingly issue unit-stride
// (or at least same-page) warp loads and stores, so when all 8 lanes of a
// full warp hit one 64 KiB page — and none straddles its end — one TLB
// translation serves the whole warp instead of eight. The address and
// same-page checks are branch-free lane loops the compiler vectorizes; the
// per-lane load32/store32 path remains the fallback (partial masks,
// cross-page scatters, straddles) and the semantic reference. Lane order is
// ascending in both store paths, so same-address conflicts resolve
// identically.
FGPU_TURBO_HOT void warp_load32(TurboCore& c, uint32_t w, const uint32_t* rs1, uint32_t imm,
                                uint32_t* rd) {
  if (c.full8(w)) {
    uint32_t addr[8];
    uint32_t tag_diff = 0, straddle = 0;
    for (uint32_t l = 0; l < 8; ++l) {
      addr[l] = rs1[l] + imm;
      tag_diff |= (addr[l] ^ addr[0]) >> mem::MainMemory::kPageBits;
      straddle |= static_cast<uint32_t>((addr[l] & TurboCore::kPageMask) >
                                        TurboCore::kPageMask - 3);
    }
    if ((tag_diff | straddle) == 0) {
      const uint8_t* const base = c.page(addr[0]);
      for (uint32_t l = 0; l < 8; ++l) {
        std::memcpy(&rd[l], base + (addr[l] & TurboCore::kPageMask), 4);
      }
      return;
    }
    for (uint32_t l = 0; l < 8; ++l) rd[l] = c.load32(addr[l]);
    return;
  }
  c.lanes(w, [&](uint32_t l) { rd[l] = c.load32(rs1[l] + imm); });
}

FGPU_TURBO_HOT void warp_store32(TurboCore& c, uint32_t w, const uint32_t* rs1, uint32_t imm,
                                 const uint32_t* rs2) {
  if (c.full8(w)) {
    uint32_t addr[8];
    uint32_t tag_diff = 0, straddle = 0;
    for (uint32_t l = 0; l < 8; ++l) {
      addr[l] = rs1[l] + imm;
      tag_diff |= (addr[l] ^ addr[0]) >> mem::MainMemory::kPageBits;
      straddle |= static_cast<uint32_t>((addr[l] & TurboCore::kPageMask) >
                                        TurboCore::kPageMask - 3);
    }
    if ((tag_diff | straddle) == 0) {
      uint8_t* const base = c.page(addr[0]);
      for (uint32_t l = 0; l < 8; ++l) {
        std::memcpy(base + (addr[l] & TurboCore::kPageMask), &rs2[l], 4);
      }
      return;
    }
    for (uint32_t l = 0; l < 8; ++l) c.store32(addr[l], rs2[l]);
    return;
  }
  c.lanes(w, [&](uint32_t l) { c.store32(rs1[l] + imm, rs2[l]); });
}

FGPU_TURBO_HOT void exec_Lw(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rd = xw + in.rd * T;
      warp_load32(c, w, xp_rs1, static_cast<uint32_t>(in.imm), xp_rd);
    }

FGPU_TURBO_HOT void exec_Sw(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      warp_store32(c, w, xp_rs1, static_cast<uint32_t>(in.imm), xp_rs2);
    }

FGPU_TURBO_HOT void exec_Flw(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const fp_rd = fw + in.rd * T;
      warp_load32(c, w, xp_rs1, static_cast<uint32_t>(in.imm), fp_rd);
    }

FGPU_TURBO_HOT void exec_Fsw(TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      warp_store32(c, w, xp_rs1, static_cast<uint32_t>(in.imm), fp_rs2);
    }

// Fused-superinstruction handlers (see the FastOp enum below): guest code
// materializes constants as `lui r, hi` / `lui; addi r, r, lo` /
// `...; fmv.w.x f, r` chains — up to three dispatches to broadcast one
// 32-bit literal. translate()'s peephole collapses each chain into a single
// TI carrying the folded constant in instr.imm; every architectural write
// of the original sequence is preserved (ConstXF still writes the x
// register — later code may read it).
FGPU_TURBO_HOT void exec_ConstX(TurboCore& c, uint32_t w, const TI& i) {
  const Instr in = i.instr;
  uint32_t* xw = c.xwarp(w);
  const uint32_t T = c.nthreads();
  uint32_t* const xp_rd = xw + in.rd * T;
  const uint32_t v = static_cast<uint32_t>(in.imm);
  c.lanes(w, [&](uint32_t l) { xp_rd[l] = v; });
}

FGPU_TURBO_HOT void exec_ConstXF(TurboCore& c, uint32_t w, const TI& i) {
  // instr.rs1 = x destination (the lui's rd), instr.rd = f destination.
  const Instr in = i.instr;
  uint32_t* xw = c.xwarp(w);
  uint32_t* fw = c.fwarp(w);
  const uint32_t T = c.nthreads();
  uint32_t* const xp = xw + in.rs1 * T;
  uint32_t* const fp = fw + in.rd * T;
  const uint32_t v = static_cast<uint32_t>(in.imm);
  c.lanes(w, [&](uint32_t l) {
    xp[l] = v;
    fp[l] = v;
  });
}

// Dispatch codes for the inline fast path; kFastNone falls back to the
// instruction's handler pointer.
enum : uint8_t {
  kFastNone = 0,
  kFastLui,
  kFastAuipc,
  kFastAddi,
  kFastAndi,
  kFastOri,
  kFastXori,
  kFastSlli,
  kFastSrli,
  kFastSrai,
  kFastSlti,
  kFastSltiu,
  kFastAdd,
  kFastSub,
  kFastAnd,
  kFastOr,
  kFastXor,
  kFastSll,
  kFastSrl,
  kFastSra,
  kFastSlt,
  kFastSltu,
  kFastMul,
  kFastFaddS,
  kFastFsubS,
  kFastFmulS,
  kFastFmaddS,
  kFastFcvtSW,
  kFastFcvtSWu,
  kFastFcvtWS,
  kFastFmvWX,
  kFastFmvXW,
  kFastFsgnjS,
  kFastFltS,
  kFastLw,
  kFastSw,
  kFastFlw,
  kFastFsw,
  // Fused superinstructions, produced only by translate()'s peephole (no
  // single guest op maps to these): constant materialization chains.
  kFastConstX,   // lui[+addi] collapsed: write imm to x[rd]
  kFastConstXF,  // lui[+addi]+fmv.w.x collapsed: write imm to x[rs1] and f[rd]
};

uint8_t fast_op_for(Op op) {
  switch (op) {
    case Op::kLui: return kFastLui;
    case Op::kAuipc: return kFastAuipc;
    case Op::kAddi: return kFastAddi;
    case Op::kAndi: return kFastAndi;
    case Op::kOri: return kFastOri;
    case Op::kXori: return kFastXori;
    case Op::kSlli: return kFastSlli;
    case Op::kSrli: return kFastSrli;
    case Op::kSrai: return kFastSrai;
    case Op::kSlti: return kFastSlti;
    case Op::kSltiu: return kFastSltiu;
    case Op::kAdd: return kFastAdd;
    case Op::kSub: return kFastSub;
    case Op::kAnd: return kFastAnd;
    case Op::kOr: return kFastOr;
    case Op::kXor: return kFastXor;
    case Op::kSll: return kFastSll;
    case Op::kSrl: return kFastSrl;
    case Op::kSra: return kFastSra;
    case Op::kSlt: return kFastSlt;
    case Op::kSltu: return kFastSltu;
    case Op::kMul: return kFastMul;
    case Op::kFaddS: return kFastFaddS;
    case Op::kFsubS: return kFastFsubS;
    case Op::kFmulS: return kFastFmulS;
    case Op::kFmaddS: return kFastFmaddS;
    case Op::kFcvtSW: return kFastFcvtSW;
    case Op::kFcvtSWu: return kFastFcvtSWu;
    case Op::kFcvtWS: return kFastFcvtWS;
    case Op::kFmvWX: return kFastFmvWX;
    case Op::kFmvXW: return kFastFmvXW;
    case Op::kFsgnjS: return kFastFsgnjS;
    case Op::kFltS: return kFastFltS;
    case Op::kLw: return kFastLw;
    case Op::kSw: return kFastSw;
    case Op::kFlw: return kFastFlw;
    case Op::kFsw: return kFastFsw;
    default: return kFastNone;
  }
}

// The threaded-code handler table: one captureless lambda per opcode,
// bound once at translation time. Register-write forms (including the
// unguarded rd writes and the FMA spellings) copy vortex/core.cpp exactly.
const std::array<Handler, arch::kNumOps>& handler_table() {
  static const std::array<Handler, arch::kNumOps> table = [] {
    std::array<Handler, arch::kNumOps> t{};
    auto set = [&t](Op op, Handler h) { t[static_cast<size_t>(op)] = h; };

    // ---------------- ALU ----------------
    set(Op::kLui, exec_Lui);
    set(Op::kAuipc, exec_Auipc);
    set(Op::kAddi, exec_Addi);
    set(Op::kSlti, exec_Slti);
    set(Op::kSltiu, exec_Sltiu);
    set(Op::kXori, exec_Xori);
    set(Op::kOri, exec_Ori);
    set(Op::kAndi, exec_Andi);
    set(Op::kSlli, exec_Slli);
    set(Op::kSrli, exec_Srli);
    set(Op::kSrai, exec_Srai);
    set(Op::kAdd, exec_Add);
    set(Op::kSub, exec_Sub);
    set(Op::kSll, exec_Sll);
    set(Op::kSlt, exec_Slt);
    set(Op::kSltu, exec_Sltu);
    set(Op::kXor, exec_Xor);
    set(Op::kSrl, exec_Srl);
    set(Op::kSra, exec_Sra);
    set(Op::kOr, exec_Or);
    set(Op::kAnd, exec_And);
    // ---------------- MUL/DIV ----------------
    set(Op::kMul, exec_Mul);
    set(Op::kMulh, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const int64_t p = static_cast<int64_t>(as_i32(xp_rs1[l])) *
                          static_cast<int64_t>(as_i32(xp_rs2[l]));
        xp_rd[l] = static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32);
      });
    });
    set(Op::kMulhsu, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const int64_t p = static_cast<int64_t>(as_i32(xp_rs1[l])) *
                          static_cast<int64_t>(static_cast<uint64_t>(xp_rs2[l]));
        xp_rd[l] = static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32);
      });
    });
    set(Op::kMulhu, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint64_t p = static_cast<uint64_t>(xp_rs1[l]) *
                           static_cast<uint64_t>(xp_rs2[l]);
        xp_rd[l] = static_cast<uint32_t>(p >> 32);
      });
    });
    set(Op::kDiv, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const int32_t a = as_i32(xp_rs1[l]), b = as_i32(xp_rs2[l]);
        int32_t r;
        if (b == 0) {
          r = -1;
        } else if (a == std::numeric_limits<int32_t>::min() && b == -1) {
          r = a;
        } else {
          r = a / b;
        }
        xp_rd[l] = static_cast<uint32_t>(r);
      });
    });
    set(Op::kDivu, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t a = xp_rs1[l], b = xp_rs2[l];
        xp_rd[l] = b == 0 ? 0xFFFFFFFFu : a / b;
      });
    });
    set(Op::kRem, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const int32_t a = as_i32(xp_rs1[l]), b = as_i32(xp_rs2[l]);
        int32_t r;
        if (b == 0) {
          r = a;
        } else if (a == std::numeric_limits<int32_t>::min() && b == -1) {
          r = 0;
        } else {
          r = a % b;
        }
        xp_rd[l] = static_cast<uint32_t>(r);
      });
    });
    set(Op::kRemu, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t a = xp_rs1[l], b = xp_rs2[l];
        xp_rd[l] = b == 0 ? a : a % b;
      });
    });
    // ---------------- CSR / system ----------------
    const Handler csr = [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        if (in.rd != 0) {
          xp_rd[l] = c.read_csr(static_cast<uint32_t>(in.imm), w, l);
        }
      });
    };
    set(Op::kCsrrw, csr);
    set(Op::kCsrrs, csr);
    set(Op::kCsrrc, csr);
    set(Op::kEcall, [](TurboCore& c, uint32_t w, const TI&) { c.do_ecall(w); });
    set(Op::kFence, [](TurboCore&, uint32_t, const TI&) {});
    // ---------------- FPU ----------------
    set(Op::kFaddS, exec_FaddS);
    set(Op::kFsubS, exec_FsubS);
    set(Op::kFmulS, exec_FmulS);
    set(Op::kFdivS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(u2f(fp_rs1[l]) / u2f(fp_rs2[l]));
      });
    });
    set(Op::kFsqrtS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] = f2u(std::sqrt(u2f(fp_rs1[l])));
      });
    });
    set(Op::kFsgnjS, exec_FsgnjS);
    set(Op::kFsgnjnS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            (fp_rs1[l] & 0x7FFFFFFFu) | (~fp_rs2[l] & 0x80000000u);
      });
    });
    set(Op::kFsgnjxS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            fp_rs1[l] ^ (fp_rs2[l] & 0x80000000u);
      });
    });
    set(Op::kFminS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(std::fmin(u2f(fp_rs1[l]), u2f(fp_rs2[l])));
      });
    });
    set(Op::kFmaxS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(std::fmax(u2f(fp_rs1[l]), u2f(fp_rs2[l])));
      });
    });
    set(Op::kFcvtWS, exec_FcvtWS);
    set(Op::kFcvtWuS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] = fcvt_w_s(u2f(fp_rs1[l]), true);
      });
    });
    set(Op::kFcvtSW, exec_FcvtSW);
    set(Op::kFcvtSWu, exec_FcvtSWu);
    set(Op::kFmvXW, exec_FmvXW);
    set(Op::kFmvWX, exec_FmvWX);
    set(Op::kFclassS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const float f = u2f(fp_rs1[l]);
        uint32_t cls = 0;
        if (std::isnan(f)) {
          cls = 1u << 9;
        } else if (std::isinf(f)) {
          cls = f < 0 ? 1u << 0 : 1u << 7;
        } else if (f == 0.0f) {
          cls = std::signbit(f) ? 1u << 3 : 1u << 4;
        } else if (std::fpclassify(f) == FP_SUBNORMAL) {
          cls = f < 0 ? 1u << 2 : 1u << 5;
        } else {
          cls = f < 0 ? 1u << 1 : 1u << 6;
        }
        xp_rd[l] = cls;
      });
    });
    set(Op::kFeqS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] =
            u2f(fp_rs1[l]) == u2f(fp_rs2[l]) ? 1 : 0;
      });
    });
    set(Op::kFltS, exec_FltS);
    set(Op::kFleS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w); uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rd = xw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        xp_rd[l] =
            u2f(fp_rs1[l]) <= u2f(fp_rs2[l]) ? 1 : 0;
      });
    });
    set(Op::kFmaddS, exec_FmaddS);
    set(Op::kFmsubS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T; uint32_t* const fp_rs3 = fw + in.rs3 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] = f2u(u2f(fp_rs1[l]) * u2f(fp_rs2[l]) -
                                     u2f(fp_rs3[l]));
      });
    });
    set(Op::kFnmsubS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T; uint32_t* const fp_rs3 = fw + in.rs3 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(-(u2f(fp_rs1[l]) * u2f(fp_rs2[l])) +
                u2f(fp_rs3[l]));
      });
    });
    set(Op::kFnmaddS, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* fw = c.fwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const fp_rd = fw + in.rd * T; uint32_t* const fp_rs1 = fw + in.rs1 * T; uint32_t* const fp_rs2 = fw + in.rs2 * T; uint32_t* const fp_rs3 = fw + in.rs3 * T;
      c.lanes(w, [&](uint32_t l) {
        fp_rd[l] =
            f2u(-(u2f(fp_rs1[l]) * u2f(fp_rs2[l])) -
                u2f(fp_rs3[l]));
      });
    });
    // ---------------- memory (functional; local/global routed per lane) --
    set(Op::kLb, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l] + static_cast<uint32_t>(in.imm);
        xp_rd[l] =
            static_cast<uint32_t>(static_cast<int8_t>(c.load8(addr)));
      });
    });
    set(Op::kLbu, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l] + static_cast<uint32_t>(in.imm);
        xp_rd[l] = c.load8(addr);
      });
    });
    set(Op::kLh, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l] + static_cast<uint32_t>(in.imm);
        xp_rd[l] =
            static_cast<uint32_t>(static_cast<int16_t>(c.load16(addr)));
      });
    });
    set(Op::kLhu, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l] + static_cast<uint32_t>(in.imm);
        xp_rd[l] = c.load16(addr);
      });
    });
    set(Op::kLw, exec_Lw);
    set(Op::kFlw, exec_Flw);
    set(Op::kSb, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l] + static_cast<uint32_t>(in.imm);
        c.store8(addr, static_cast<uint8_t>(xp_rs2[l]));
      });
    });
    set(Op::kSh, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l] + static_cast<uint32_t>(in.imm);
        c.store16(addr, static_cast<uint16_t>(xp_rs2[l]));
      });
    });
    set(Op::kSw, exec_Sw);
    set(Op::kFsw, exec_Fsw);
    set(Op::kLrW, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l];
        xp_rd[l] = c.load32(addr);
      });
    });
    set(Op::kScW, [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      // Single-context execution: SC always succeeds (as in core.cpp).
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l];
        c.store32(addr, xp_rs2[l]);
        xp_rd[l] = 0;
      });
    });
    const Handler amo = [](TurboCore& c, uint32_t w, const TI& i) {
      const Instr in = i.instr; uint32_t* xw = c.xwarp(w);
      const uint32_t T = c.nthreads(); uint32_t* const xp_rs1 = xw + in.rs1 * T; uint32_t* const xp_rs2 = xw + in.rs2 * T; uint32_t* const xp_rd = xw + in.rd * T;
      c.lanes(w, [&](uint32_t l) {
        const uint32_t addr = xp_rs1[l];
        const uint32_t old = c.load32(addr);
        const uint32_t src = xp_rs2[l];
        uint32_t next = old;
        switch (in.op) {
          case Op::kAmoswapW: next = src; break;
          case Op::kAmoaddW: next = old + src; break;
          case Op::kAmoandW: next = old & src; break;
          case Op::kAmoorW: next = old | src; break;
          case Op::kAmoxorW: next = old ^ src; break;
          case Op::kAmominW:
            next = static_cast<uint32_t>(std::min(as_i32(old), as_i32(src)));
            break;
          case Op::kAmomaxW:
            next = static_cast<uint32_t>(std::max(as_i32(old), as_i32(src)));
            break;
          default: break;
        }
        c.store32(addr, next);
        if (in.rd != 0) xp_rd[l] = old;
      });
    };
    set(Op::kAmoswapW, amo);
    set(Op::kAmoaddW, amo);
    set(Op::kAmoandW, amo);
    set(Op::kAmoorW, amo);
    set(Op::kAmoxorW, amo);
    set(Op::kAmominW, amo);
    set(Op::kAmomaxW, amo);
    return t;
  }();
  return table;
}

}  // namespace

TurboCore::TranslatedBlock* TurboCore::translate(uint32_t start_pc) {
  auto blk = std::make_unique<TranslatedBlock>();
  blk->start_pc = start_pc;
  uint32_t pc = start_pc;
  for (;;) {
    if (blk->body.size() >= kMaxBlockInstrs) {
      blk->has_term = false;
      blk->fall_pc = pc;
      break;
    }
    const uint32_t word = gmem_.load32(pc);
    const auto decoded = arch::decode(word);
    if (!decoded) {
      // Terminate on the undecodable word; dispatch reports the error.
      blk->term = Instr{};
      blk->term_pc = pc;
      blk->has_term = true;
      break;
    }
    if (is_terminator(decoded->op)) {
      blk->term = *decoded;
      blk->term_pc = pc;
      blk->has_term = true;
      blk->fall_pc = pc + 4;
      blk->take_pc = static_take_pc(*decoded, pc);
      break;
    }
    // Constant-fusion peephole: collapse `lui r, hi` [+ `addi r, r, lo`]
    // [+ `fmv.w.x f, r`] chains into one superinstruction TI. Legal within
    // a block because the thread mask only changes at terminators, so every
    // instruction of the chain executes under the same lanes; a jump into
    // the middle of a chain translates its own block starting there, so
    // fusion never swallows a branch target. body_retired keeps guest
    // retirement exact.
    bool fused = false;
    if (!blk->body.empty()) {
      TI& prev = blk->body.back();
      const bool prev_const_x = prev.fast == kFastLui || prev.fast == kFastConstX;
      if (prev_const_x) {
        const uint32_t prev_val = prev.fast == kFastLui
                                      ? static_cast<uint32_t>(prev.instr.imm) << 12
                                      : static_cast<uint32_t>(prev.instr.imm);
        if (decoded->op == Op::kAddi && decoded->rd == prev.instr.rd &&
            decoded->rs1 == prev.instr.rd) {
          prev.instr.op = Op::kAddi;
          prev.instr.imm = static_cast<int32_t>(prev_val + static_cast<uint32_t>(decoded->imm));
          prev.fast = kFastConstX;
          prev.fn = exec_ConstX;
          fused = true;
        } else if (decoded->op == Op::kFmvWX && decoded->rs1 == prev.instr.rd) {
          prev.instr.op = Op::kFmvWX;
          prev.instr.rs1 = prev.instr.rd;  // x destination (the chain's register)
          prev.instr.rd = decoded->rd;     // f destination
          prev.instr.imm = static_cast<int32_t>(prev_val);
          prev.fast = kFastConstXF;
          prev.fn = exec_ConstXF;
          fused = true;
        }
      }
    }
    if (!fused) {
      blk->body.push_back(TI{handler_table()[static_cast<size_t>(decoded->op)], *decoded, pc,
                             fast_op_for(decoded->op)});
    }
    ++blk->body_retired;
    pc += 4;
  }
  ++stats_.blocks_translated;
  TranslatedBlock* raw = blk.get();
  blocks_->emplace(start_pc, std::move(blk));
  return raw;
}

bool TurboCore::run_warp(uint32_t w) {
  TWarp& warp = warps_[w];
  TranslatedBlock* blk = lookup(warp.pc);
  // Retired counts accumulate in a local and flush once per run_warp exit:
  // stats_ and the launch-wide counter live behind pointers whose targets
  // handler stores may alias (TBAA), so per-block RMWs through them would
  // reload every block. instret_ stays per-block exact for CSR reads.
  uint64_t local_retired = 0;
  struct Flush {
    TurboCore& c;
    const uint64_t& n;
    ~Flush() {
      c.stats_.instrs += n;
      *c.run_instrs_ += n;
    }
  } flush{*this, local_retired};
  for (;;) {
    if (*run_instrs_ + local_retired > budget_) {
      error_ = Status(ErrorKind::kRuntimeError,
                      "turbo: kernel exceeded instruction budget=" + std::to_string(budget_) +
                          " (possible deadlock or runaway loop)");
      return false;
    }
    for (const TI& ti : blk->body) {
      switch (ti.fast) {
        case kFastLui: exec_Lui(*this, w, ti); break;
        case kFastAuipc: exec_Auipc(*this, w, ti); break;
        case kFastAddi: exec_Addi(*this, w, ti); break;
        case kFastAndi: exec_Andi(*this, w, ti); break;
        case kFastOri: exec_Ori(*this, w, ti); break;
        case kFastXori: exec_Xori(*this, w, ti); break;
        case kFastSlli: exec_Slli(*this, w, ti); break;
        case kFastSrli: exec_Srli(*this, w, ti); break;
        case kFastSrai: exec_Srai(*this, w, ti); break;
        case kFastSlti: exec_Slti(*this, w, ti); break;
        case kFastSltiu: exec_Sltiu(*this, w, ti); break;
        case kFastAdd: exec_Add(*this, w, ti); break;
        case kFastSub: exec_Sub(*this, w, ti); break;
        case kFastAnd: exec_And(*this, w, ti); break;
        case kFastOr: exec_Or(*this, w, ti); break;
        case kFastXor: exec_Xor(*this, w, ti); break;
        case kFastSll: exec_Sll(*this, w, ti); break;
        case kFastSrl: exec_Srl(*this, w, ti); break;
        case kFastSra: exec_Sra(*this, w, ti); break;
        case kFastSlt: exec_Slt(*this, w, ti); break;
        case kFastSltu: exec_Sltu(*this, w, ti); break;
        case kFastMul: exec_Mul(*this, w, ti); break;
        case kFastFaddS: exec_FaddS(*this, w, ti); break;
        case kFastFsubS: exec_FsubS(*this, w, ti); break;
        case kFastFmulS: exec_FmulS(*this, w, ti); break;
        case kFastFmaddS: exec_FmaddS(*this, w, ti); break;
        case kFastFcvtSW: exec_FcvtSW(*this, w, ti); break;
        case kFastFcvtSWu: exec_FcvtSWu(*this, w, ti); break;
        case kFastFcvtWS: exec_FcvtWS(*this, w, ti); break;
        case kFastFmvWX: exec_FmvWX(*this, w, ti); break;
        case kFastFmvXW: exec_FmvXW(*this, w, ti); break;
        case kFastFsgnjS: exec_FsgnjS(*this, w, ti); break;
        case kFastFltS: exec_FltS(*this, w, ti); break;
        case kFastLw: exec_Lw(*this, w, ti); break;
        case kFastSw: exec_Sw(*this, w, ti); break;
        case kFastFlw: exec_Flw(*this, w, ti); break;
        case kFastFsw: exec_Fsw(*this, w, ti); break;
        case kFastConstX: exec_ConstX(*this, w, ti); break;
        case kFastConstXF: exec_ConstXF(*this, w, ti); break;
        default: ti.fn(*this, w, ti); break;
      }
    }
    const uint64_t retired = blk->body_retired + (blk->has_term ? 1 : 0);
    instret_ += retired;
    local_retired += retired;
    if (!blk->has_term) {
      blk = next_fall(blk);
      continue;
    }

    const Instr& in = blk->term;
    const uint32_t pc = blk->term_pc;
    const uint64_t mask = warp.tmask;
    switch (in.op) {
      case Op::kJal:
        if (in.rd != 0) {
          lanes(w, [&](uint32_t l) { xr(w, l, in.rd) = pc + 4; });
        }
        warp.pc = blk->take_pc;
        blk = next_take(blk);
        break;
      case Op::kJalr: {
        const uint32_t target =
            (xr(w, first_active_lane(mask), in.rs1) + static_cast<uint32_t>(in.imm)) & ~1u;
        if (in.rd != 0) {
          lanes(w, [&](uint32_t l) { xr(w, l, in.rd) = pc + 4; });
        }
        warp.pc = target;
        blk = lookup(target);  // dynamic target: no chain slot
        break;
      }
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBltu:
      case Op::kBgeu: {
        const uint32_t lane = first_active_lane(mask);
        const uint32_t a = xr(w, lane, in.rs1), b = xr(w, lane, in.rs2);
        bool taken = false;
        switch (in.op) {
          case Op::kBeq: taken = a == b; break;
          case Op::kBne: taken = a != b; break;
          case Op::kBlt: taken = as_i32(a) < as_i32(b); break;
          case Op::kBge: taken = as_i32(a) >= as_i32(b); break;
          case Op::kBltu: taken = a < b; break;
          case Op::kBgeu: taken = a >= b; break;
          default: break;
        }
        if (taken) {
          warp.pc = blk->take_pc;
          blk = next_take(blk);
        } else {
          warp.pc = blk->fall_pc;
          blk = next_fall(blk);
        }
        break;
      }
      case Op::kTmc: {
        const uint64_t full =
            (config_.threads >= 64) ? ~0ull : ((1ull << config_.threads) - 1);
        const uint64_t value = xr(w, first_active_lane(mask), in.rs1) & full;
        warp.tmask = value;
        if (value == 0) {
          warp.active = false;
          return true;
        }
        warp.pc = blk->fall_pc;
        blk = next_fall(blk);
        break;
      }
      case Op::kWspawn: {
        const uint32_t lane = first_active_lane(mask);
        const uint32_t count = std::min(xr(w, lane, in.rs1), config_.warps);
        const uint32_t target = xr(w, lane, in.rs2);
        for (uint32_t s = 1; s < count; ++s) {
          TWarp& spawned = warps_[s];
          if (spawned.active) continue;
          spawned = TWarp{};
          spawned.active = true;
          spawned.pc = target;
          spawned.tmask = 1;
        }
        warp.pc = blk->fall_pc;
        blk = next_fall(blk);
        break;
      }
      case Op::kSplit: {
        uint64_t taken = 0;
        lanes(w, [&](uint32_t l) {
          if (xr(w, l, in.rs1) != 0) taken |= (1ull << l);
        });
        const uint64_t nottaken = mask & ~taken;
        if (nottaken == 0) {
          warp.ipdom.push_back({IpdomEntry::kUniform, 0, 0});
          warp.pc = blk->fall_pc;
          blk = next_fall(blk);
        } else if (taken == 0) {
          warp.ipdom.push_back({IpdomEntry::kUniform, 0, 0});
          warp.pc = blk->take_pc;
          blk = next_take(blk);
        } else {
          warp.ipdom.push_back({IpdomEntry::kRestore, mask, 0});
          warp.ipdom.push_back({IpdomEntry::kElse, nottaken, blk->take_pc});
          warp.tmask = taken;
          warp.pc = blk->fall_pc;
          blk = next_fall(blk);
        }
        break;
      }
      case Op::kJoin: {
        if (warp.ipdom.empty()) {
          FGPU_LOG(kError, "turbo core %u warp %u: JOIN with empty IPDOM stack at %08x",
                   core_id_, w, pc);
          warp.active = false;
          return true;
        }
        const IpdomEntry entry = warp.ipdom.back();
        warp.ipdom.pop_back();
        switch (entry.kind) {
          case IpdomEntry::kUniform:
            warp.pc = blk->take_pc;
            blk = next_take(blk);
            break;
          case IpdomEntry::kElse:
            warp.tmask = entry.mask;
            warp.pc = entry.pc;
            blk = lookup(entry.pc);  // stack-carried target: no chain slot
            break;
          case IpdomEntry::kRestore:
            warp.tmask = entry.mask;
            warp.pc = blk->take_pc;
            blk = next_take(blk);
            break;
        }
        break;
      }
      case Op::kPred: {
        uint64_t alive = 0;
        lanes(w, [&](uint32_t l) {
          if (xr(w, l, in.rs1) != 0) alive |= (1ull << l);
        });
        if (alive == 0) {
          warp.pc = blk->take_pc;
          blk = next_take(blk);
        } else {
          warp.tmask = alive;
          warp.pc = blk->fall_pc;
          blk = next_fall(blk);
        }
        break;
      }
      case Op::kBar: {
        const uint32_t lane = first_active_lane(mask);
        barrier_arrive(w, xr(w, lane, in.rs1) & 31, xr(w, lane, in.rs2));
        warp.pc = blk->fall_pc;
        if (warp.at_barrier) return true;  // blocked; resumes after the BAR
        blk = next_fall(blk);
        break;
      }
      default:
        FGPU_LOG(kError, "turbo core %u warp %u: invalid instruction at %08x", core_id_, w, pc);
        warp.active = false;
        return true;
    }
  }
}

TurboEngine::TurboEngine(const Config& config, mem::MainMemory& gmem, EcallHandler ecall_handler)
    : config_(config), gmem_(gmem), ecall_handler_(std::move(ecall_handler)) {
  cores_.reserve(config_.cores);
  for (uint32_t c = 0; c < config_.cores; ++c) {
    cores_.push_back(std::make_unique<TurboCore>(config_, c, gmem_, ecall_handler_, stats_));
  }
}

TurboEngine::~TurboEngine() = default;

void TurboEngine::invalidate() {
  for (auto& core : cores_) core->invalidate();
}

void TurboEngine::reset_blocks() {
  for (auto& core : cores_) core->clear_blocks();
}

void TurboEngine::select_kernel(const std::string& kernel) {
  for (auto& core : cores_) core->select_kernel(kernel);
}

Status TurboEngine::run(uint32_t entry_pc) {
  last_run_instrs_ = 0;
  uint64_t run_instrs = 0;
  // Cores execute sequentially over shared global memory; Config::max_cycles
  // doubles as the launch-wide guest-instruction ceiling (an instruction
  // takes at least a cycle, so any kernel the cycle tier completes fits).
  for (auto& core : cores_) {
    core->reset(entry_pc);
    const Status status = core->run(&run_instrs, config_.max_cycles);
    if (!status.is_ok()) {
      last_run_instrs_ = run_instrs;
      return status;
    }
  }
  last_run_instrs_ = run_instrs;
  return Status::ok();
}

}  // namespace fgpu::vortex::jit
