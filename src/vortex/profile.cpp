#include "vortex/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fgpu::vortex {
namespace {

void add_histogram(std::vector<uint64_t>& into, const std::vector<uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

// Dominant stall bucket of a PC, for the hot-spot report.
const char* dominant_reason(const PcStat& stat) {
  const char* name = "scoreboard";
  uint64_t best = stat.stall_scoreboard;
  const auto consider = [&](uint64_t v, const char* n) {
    if (v > best) {
      best = v;
      name = n;
    }
  };
  consider(stat.stall_lsu, "lsu");
  consider(stat.stall_fu, "fu");
  consider(stat.stall_ibuffer, "ibuffer");
  consider(stat.stall_barrier, "barrier");
  return name;
}

}  // namespace

void PcProfile::merge(const PcProfile& other) {
  enabled = enabled || other.enabled;
  if (occupancy_interval == 0) occupancy_interval = other.occupancy_interval;
  for (const auto& [pc, stat] : other.by_pc) by_pc[pc] += stat;
  if (occupancy.size() < other.occupancy.size()) {
    occupancy.resize(other.occupancy.size());
  }
  for (size_t i = 0; i < other.occupancy.size(); ++i) {
    occupancy[i].cycle = other.occupancy[i].cycle;
    occupancy[i].ready += other.occupancy[i].ready;
    occupancy[i].blocked += other.occupancy[i].blocked;
    occupancy[i].idle += other.occupancy[i].idle;
  }
  add_histogram(l1d_set_conflicts, other.l1d_set_conflicts);
  add_histogram(l2_set_conflicts, other.l2_set_conflicts);
}

PcStat PcProfile::totals() const {
  PcStat total;
  for (const auto& [pc, stat] : by_pc) total += stat;
  return total;
}

std::string annotated_disassembly(const vasm::Program& program, const vasm::SourceMap& source_map,
                                  const PcProfile& profile) {
  vasm::DisasmOptions options;
  options.source_map = source_map.empty() ? nullptr : &source_map;
  options.annotate = [&profile](uint32_t addr, size_t /*word_index*/) -> std::string {
    char col[64];
    const auto it = profile.by_pc.find(addr);
    if (it == profile.by_pc.end()) {
      std::snprintf(col, sizeof(col), "%10s %10s %6s |", "", "", "");
    } else {
      std::snprintf(col, sizeof(col), "%10llu %10llu %6.3f |",
                    static_cast<unsigned long long>(it->second.issued),
                    static_cast<unsigned long long>(it->second.total_stalls()),
                    it->second.issue_rate());
    }
    return col;
  };
  std::ostringstream os;
  char head[64];
  std::snprintf(head, sizeof(head), "%10s %10s %6s |\n", "issued", "stalls", "ipc");
  os << head << program.disassemble(options);
  return os.str();
}

std::string hotspot_report(const vasm::Program& program, const vasm::SourceMap& source_map,
                           const PcProfile& profile, size_t top_k) {
  std::vector<std::pair<uint32_t, PcStat>> ranked(profile.by_pc.begin(), profile.by_pc.end());
  // Stable order: stall cycles descending, PC ascending on ties.
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    const uint64_t sa = a.second.total_stalls(), sb = b.second.total_stalls();
    return sa != sb ? sa > sb : a.first < b.first;
  });
  if (ranked.size() > top_k) ranked.resize(top_k);

  std::ostringstream os;
  os << "hot spots (top " << ranked.size() << " PCs by stall cycles)\n";
  for (size_t rank = 0; rank < ranked.size(); ++rank) {
    const auto& [pc, stat] = ranked[rank];
    char line[160];
    std::snprintf(line, sizeof(line), "#%-2zu pc=%08x  stalls=%-10llu (%s)  issued=%-8llu  ",
                  rank + 1, pc, static_cast<unsigned long long>(stat.total_stalls()),
                  dominant_reason(stat), static_cast<unsigned long long>(stat.issued));
    os << line;
    const size_t index = (pc - program.base) / 4;
    if (index < program.words.size()) {
      if (const auto instr = arch::decode(program.words[index])) {
        os << arch::to_string(*instr);
      } else {
        os << "<invalid>";
      }
      const std::string& src = source_map.source_for(index);
      if (!src.empty()) os << "   ; " << src;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fgpu::vortex
