// Turbo device backend: compiles KIR kernels with codegen/ (same binaries
// as the soft GPU) but executes them on the vortex/jit binary translator —
// the functional tier of the two-tier execution contract (DESIGN.md
// "Execution tiers"). Reports instruction counts and JIT statistics only;
// device_cycles is always 0 and no profile is ever produced, so the
// cycle-exact VortexDevice remains the sole timing oracle.
#pragma once

#include <memory>
#include <unordered_map>

#include "codegen/codegen.hpp"
#include "mem/memory.hpp"
#include "runtime/console.hpp"
#include "runtime/runtime.hpp"
#include "vortex/jit/turbo.hpp"

namespace fgpu::vcl {

class TurboDevice final : public Device {
 public:
  explicit TurboDevice(vortex::Config config = {},
                       const fpga::Board& board = fpga::stratix10_sx2800(),
                       codegen::Options codegen_options = {});

  std::string name() const override;
  const fpga::Board& board() const override { return board_; }

  Buffer alloc(size_t bytes) override;
  void write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) override;
  void read(const Buffer& buffer, void* out, size_t bytes, size_t offset) override;

  Status build(const kir::Module& module) override;
  const std::vector<KernelBuildInfo>& build_info() const override { return build_info_; }

  // Device-pool re-arm: drops module/kernels/buffers/console but keeps the
  // translated block caches pending the next build()'s verdict — if that
  // build loads the byte-identical binary set (a warm --repeat of the same
  // benchmark), the translations are still valid and stay; any other binary
  // set drops them silently. Observationally neutral either way: execution
  // output does not depend on translation state, and the silent drop happens
  // exactly when a fresh device would also have translated from scratch.
  void reset() override;

  Result<LaunchStats> launch(const std::string& kernel, const std::vector<Arg>& args,
                             const kir::NDRange& ndrange) override;

  const std::vector<std::string>& console() const override { return console_.lines(); }
  void clear_console() override { console_.clear(); }

  const vortex::Config& config() const { return config_; }
  // Cumulative translation/dispatch counters (fgpu.host.v1 "turbo" detail).
  const vortex::jit::TurboStats& jit_stats() const { return engine_->stats(); }
  // Direct access for tests.
  mem::MainMemory& memory() { return memory_; }

 private:
  struct Built {
    // Shared with the process-wide KernelCache (immutable once compiled).
    std::shared_ptr<const codegen::CompiledKernel> compiled;
    const kir::Kernel* kernel = nullptr;  // points into module copy
  };

  vortex::Config config_;
  fpga::Board board_;
  codegen::Options codegen_options_;
  mem::MainMemory memory_;
  std::unique_ptr<vortex::jit::TurboEngine> engine_;
  kir::Module module_;  // retained copy so Built::kernel stays valid
  std::unordered_map<std::string, Built> kernels_;
  std::vector<KernelBuildInfo> build_info_;
  EcallConsole console_;
  // Kernel whose binary currently occupies the code region. Relaunching it
  // keeps the translated blocks; loading a different one invalidates.
  std::string loaded_kernel_;
  uint32_t heap_next_ = 0;
  // Deferred-drop state for reset(): block caches survive reset and the
  // next build() compares its binary-set digest against warm_digest_ —
  // match keeps them, mismatch drops them without counting an invalidation
  // (a fresh device would not have counted one either).
  bool pending_block_drop_ = false;
  uint64_t warm_digest_ = 0;
};

}  // namespace fgpu::vcl
