#include "runtime/hls_cache.hpp"

#include <chrono>
#include <utility>

#include "kir/digest.hpp"
#include "kir/passes.hpp"

namespace fgpu::vcl {
namespace {

uint64_t fnv_mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t fnv_str(uint64_t h, const std::string& s) {
  h = fnv_mix(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

HlsCache& HlsCache::instance() {
  static HlsCache cache;
  return cache;
}

std::shared_ptr<const HlsCache::Entry> HlsCache::synthesize(const kir::Kernel& kernel,
                                                            const fpga::Board& board,
                                                            const hls::HlsOptions& options) {
  uint64_t key = kir::kernel_digest(kernel);
  key = fnv_str(key, board.name);
  key = fnv_mix(key, options.ndrange ? 1 : 0);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }

  // Miss: expand + synthesize unlocked (the expensive part), insert
  // first-wins. Both synthesize and expand_builtins are pure functions of
  // (kernel, board, options), so racing entries are interchangeable.
  const auto t0 = std::chrono::steady_clock::now();
  auto entry = std::make_shared<Entry>();
  entry->kernel = kir::clone_kernel(kernel);
  kir::expand_builtins(entry->kernel);
  // Synthesize the expanded kernel the entry owns: the design's access-site
  // pointers must target the nodes launches will interpret.
  auto design = hls::synthesize(entry->kernel, board, options);
  if (design.is_ok()) {
    entry->status = Status::ok();
    entry->design = std::make_unique<const hls::HlsDesign>(design.take());
  } else {
    entry->status = design.status();
    // The failed attempt still has a structured report: its area rows are
    // exactly the Table II "does not fit" data points.
    entry->failed_synth = hls::synth_report(entry->kernel, board);
  }
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  stats_.synth_ms += ms;
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;  // on a race the earlier insert wins; ours was equivalent
  return it->second;
}

HlsCacheStats HlsCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void HlsCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = HlsCacheStats{};
}

}  // namespace fgpu::vcl
