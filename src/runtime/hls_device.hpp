// Intel-HLS-like device backend: kernels are synthesized by the hls/ model
// into pipelined datapaths; launches execute functionally through the KIR
// interpreter while timing follows the NDRange pipeline model
// (depth + items x II, bounded by off-chip bandwidth).
#pragma once

#include <memory>
#include <unordered_map>

#include "hls/compiler.hpp"
#include "kir/interp.hpp"
#include "runtime/hls_cache.hpp"
#include "runtime/runtime.hpp"

namespace fgpu::vcl {

class HlsDevice final : public Device {
 public:
  explicit HlsDevice(const fpga::Board& board = fpga::stratix10_mx2100(),
                     hls::HlsOptions options = {});

  std::string name() const override { return "intel-hls@" + board_.name; }
  const fpga::Board& board() const override { return board_; }

  Buffer alloc(size_t bytes) override;
  void write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) override;
  void read(const Buffer& buffer, void* out, size_t bytes, size_t offset) override;

  Status build(const kir::Module& module) override;
  const std::vector<KernelBuildInfo>& build_info() const override { return build_info_; }

  // Device-pool re-arm: drops built kernels, buffers, console and the
  // address allocator; memprof settings return to construction defaults.
  // Synthesized designs live in the process-wide HlsCache, not here.
  void reset() override;

  Result<LaunchStats> launch(const std::string& kernel, const std::vector<Arg>& args,
                             const kir::NDRange& ndrange) override;

  const std::vector<std::string>& console() const override { return console_; }
  void clear_console() override { console_.clear(); }

  // The synthesized design for a kernel (nullptr if synthesis failed or the
  // module as a whole did not fit).
  const hls::HlsDesign* design(const std::string& kernel) const {
    auto it = entries_.find(kernel);
    return it == entries_.end() ? nullptr : it->second->design.get();
  }

  // Memory-hierarchy profiling of the burst-LSU read path: each launch's
  // global-load address stream is classified against a mem::ShadowCacheSim
  // of the given geometry (the soft-GPU L1D by convention, so the two
  // backends' miss classes are comparable), tagged by AccessSite index.
  // The HLS timing model has no timed cache, so this is observational only
  // — device_cycles are unchanged.
  void set_memprof(bool enabled, uint32_t shadow_lines, uint32_t shadow_ways) {
    memprof_enabled_ = enabled;
    memprof_lines_ = shadow_lines;
    memprof_ways_ = shadow_ways;
  }

 private:
  fpga::Board board_;
  hls::HlsOptions options_;
  // Launchable kernels: cache entries own both the expanded kernel the
  // interpreter runs and the design whose access sites point into it.
  // Cleared wholesale when the module does not fit as a whole (no
  // bitstream -> nothing launchable), like clReleaseProgram.
  std::unordered_map<std::string, std::shared_ptr<const HlsCache::Entry>> entries_;
  std::vector<KernelBuildInfo> build_info_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> buffers_;  // addr -> data
  std::vector<std::string> console_;
  uint32_t next_addr_ = 0x1000;
  bool memprof_enabled_ = false;
  uint32_t memprof_lines_ = 1024;  // soft-GPU L1D default: 16 KiB / 16 B
  uint32_t memprof_ways_ = 2;
};

}  // namespace fgpu::vcl
