#include "runtime/vortex_device.hpp"

#include <cstdio>
#include <cstring>

#include "codegen/abi.hpp"
#include "common/bits.hpp"
#include "runtime/kernel_cache.hpp"
#include "trace/trace.hpp"

namespace fgpu::vcl {

VortexDevice::VortexDevice(vortex::Config config, const fpga::Board& board,
                           codegen::Options codegen_options)
    : config_(config),
      board_(board),
      codegen_options_(codegen_options),
      heap_next_(arch::kHeapBase) {
  config_.dram = board_.dram;
  cluster_ = std::make_unique<vortex::Cluster>(config_, memory_, console_.handler());
}

std::string VortexDevice::name() const {
  return "vortex-" + config_.to_string() + "@" + board_.name;
}

Buffer VortexDevice::alloc(size_t bytes) {
  const uint32_t addr = heap_next_;
  heap_next_ = static_cast<uint32_t>(align_up(heap_next_ + bytes, 64));
  return Buffer{addr, bytes};
}

void VortexDevice::write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) {
  memory_.write(buffer.device_addr + static_cast<uint32_t>(offset), data,
                static_cast<uint32_t>(bytes));
}

void VortexDevice::read(const Buffer& buffer, void* out, size_t bytes, size_t offset) {
  memory_.read(buffer.device_addr + static_cast<uint32_t>(offset), out,
               static_cast<uint32_t>(bytes));
}

Status VortexDevice::build(const kir::Module& module) {
  module_ = module;
  kernels_.clear();
  build_info_.clear();
  Status first_error;
  // Compiles go through the process-wide cache: same kernel digest + same
  // codegen options + same target -> the shared CompiledKernel, so repeated
  // builds (device pool, --repeat) cost a hash lookup.
  const std::string target = config_.to_string() + "@" + board_.name;
  for (const auto& kernel : module_.kernels) {
    KernelBuildInfo info;
    info.kernel = kernel.name;
    auto entry = KernelCache::instance().compile(kernel, codegen_options_, target);
    if (entry.status.is_ok()) {
      const codegen::CompiledKernel& compiled = *entry.compiled;
      info.status = Status::ok();
      info.binary_words = compiled.program.words.size();
      info.barrier_dispatch = compiled.barrier_dispatch;
      info.log = "compiled to " + std::to_string(info.binary_words) + " instructions (" +
                 (compiled.barrier_dispatch ? "work-group dispatch" : "grid-stride dispatch") +
                 ", " + std::to_string(compiled.spill_slots) + " spill slots)";
      info.binary = compiled.program;
      info.source_map = compiled.source_map;
      info.compiled = entry.compiled;
      kernels_[kernel.name] = Built{entry.compiled, &kernel};
    } else {
      info.status = entry.status;
      info.log = entry.status.to_string();
      if (first_error.is_ok()) first_error = entry.status;
    }
    build_info_.push_back(std::move(info));
  }
  return first_error;
}

void VortexDevice::reset() {
  module_ = {};
  kernels_.clear();
  build_info_.clear();
  memory_.clear();
  console_.clear();
  heap_next_ = arch::kHeapBase;
  cluster_->hard_reset();
}

Result<LaunchStats> VortexDevice::launch(const std::string& kernel_name,
                                         const std::vector<Arg>& args,
                                         const kir::NDRange& ndrange) {
  auto it = kernels_.find(kernel_name);
  if (it == kernels_.end()) {
    return Result<LaunchStats>(ErrorKind::kNotFound, "kernel '" + kernel_name + "' not built");
  }
  const Built& built = it->second;
  const kir::Kernel& kernel = *built.kernel;
  if (args.size() != kernel.params.size()) {
    return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                               kernel_name + ": wrong argument count");
  }
  for (int d = 0; d < 3; ++d) {
    if (ndrange.local[d] == 0 || ndrange.global[d] % ndrange.local[d] != 0) {
      return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                                 kernel_name + ": global size not divisible by local size");
    }
  }
  const uint32_t local_total = ndrange.local_items();
  uint32_t nbw = 0;
  if (built.compiled->barrier_dispatch) {
    const uint32_t lanes = config_.warps * config_.threads;
    if (local_total > lanes) {
      return Result<LaunchStats>(
          ErrorKind::kInvalidArgument,
          kernel_name + ": work-group size " + std::to_string(local_total) +
              " exceeds hardware parallelism W*T=" + std::to_string(lanes) +
              " required by the work-group dispatch mapping");
    }
    nbw = (local_total + config_.threads - 1) / config_.threads;
  }
  if (kernel.local_bytes() > arch::kLocalSize) {
    return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                               kernel_name + ": __local memory exceeds device capacity");
  }

  // Load the kernel binary.
  memory_.write(built.compiled->program.base, built.compiled->program.words.data(),
                built.compiled->program.size_bytes());

  // Write the argument block (see codegen/abi.hpp).
  namespace abi = codegen::abi;
  auto w32 = [&](uint32_t offset, uint32_t value) {
    memory_.store32(arch::kArgBase + offset, value);
  };
  w32(abi::kDims, ndrange.dims);
  for (int d = 0; d < 3; ++d) {
    w32(abi::kGlobal0 + 4 * static_cast<uint32_t>(d), ndrange.global[d]);
    w32(abi::kLocal0 + 4 * static_cast<uint32_t>(d), ndrange.local[d]);
    w32(abi::kNumGroups0 + 4 * static_cast<uint32_t>(d), ndrange.num_groups(static_cast<uint32_t>(d)));
  }
  w32(abi::kTotalItems, static_cast<uint32_t>(ndrange.global_items()));
  w32(abi::kLocalTotal, local_total);
  w32(abi::kNbw, nbw);
  w32(abi::kTotalGroups, static_cast<uint32_t>(ndrange.total_groups()));
  for (size_t i = 0; i < args.size(); ++i) {
    uint32_t bits = 0;
    if (const auto* buffer = std::get_if<Buffer>(&args[i])) {
      if (!kernel.params[i].is_buffer) {
        return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                                   kernel_name + ": buffer passed for scalar param");
      }
      bits = buffer->device_addr;
    } else if (const auto* iv = std::get_if<int32_t>(&args[i])) {
      bits = static_cast<uint32_t>(*iv);
    } else {
      bits = f2u(std::get<float>(args[i]));
    }
    w32(abi::arg_offset(static_cast<uint32_t>(i)), bits);
  }

  auto stats = cluster_->run(built.compiled->program.entry());
  if (!stats.is_ok()) return stats.status();
  if (trace::Sink* sink = trace::kEnabled ? trace::current() : nullptr) {
    // Kernel begin/end on the sink's monotonic timeline: the per-launch
    // events emitted during cluster_->run() used the same time base; the
    // base then advances past this kernel so launches do not overlap.
    for (uint32_t c = 0; c < config_.cores; ++c) {
      sink->set_thread_name(c, "core" + std::to_string(c));
    }
    sink->complete(sink->intern(kernel_name), "kernel", 0, 0, stats->perf.cycles,
                   {{"instrs", stats->perf.instrs},
                    {"items", ndrange.global_items()},
                    {"dram_bytes", stats->dram_bytes}});
    sink->set_time_base(sink->time_base() + stats->perf.cycles + 1);
  }
  console_.flush();

  LaunchStats out;
  out.device_cycles = stats->perf.cycles;
  out.clock_mhz = board_.soft_gpu_clock_mhz;
  out.perf = stats->perf;
  out.l1d = stats->l1d;
  out.l2 = stats->l2;
  out.dram = stats->dram;
  out.dram_bytes = stats->dram_bytes;
  if (config_.profile) out.profile = cluster_->collect_profile();
  if (config_.memprof) out.memprof = cluster_->collect_mem_profile();
  return out;
}

}  // namespace fgpu::vcl
