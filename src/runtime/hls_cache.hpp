// Process-wide HLS synthesis cache: memoizes hls::synthesize results keyed
// by KIR kernel digest x board identity x HlsOptions, the HLS-flow mirror
// of runtime/kernel_cache.hpp. Synthesis here is a model, not a multi-hour
// fitter run, but it still walks the whole kernel (DFG census, builtin
// expansion, area rows) per build — the exact per-benchmark tax a
// long-running host must not repay on every --repeat.
//
// An entry owns BOTH the synthesized design AND the builtin-expanded kernel
// clone the design's AccessSite::site pointers point into: the two are one
// object lifetime-wise (HlsDevice launches interpret the entry's kernel so
// site attribution stays pointer-exact). Entries are immutable after
// construction and safe to share across suite worker threads — the KIR
// interpreter never writes through Stmt/Expr pointers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.hpp"
#include "fpga/board.hpp"
#include "hls/compiler.hpp"
#include "kir/kir.hpp"

namespace fgpu::vcl {

struct HlsCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;  // one per actual synthesis run
  double synth_ms = 0;  // host wall spent inside hls::synthesize (model time,
                        // not the modelled synthesis_hours)
};

class HlsCache {
 public:
  struct Entry {
    // The builtin-expanded kernel the design was synthesized from; every
    // AccessSite::site pointer in `design` points into these nodes.
    kir::Kernel kernel;
    // Set on successful synthesis; on failure `status` carries the fitter
    // verdict and `failed_synth`/`failed_area` the Table-II report rows.
    std::unique_ptr<const hls::HlsDesign> design;
    Status status;
    hls::SynthReport failed_synth;  // synth_report() of a failed fit
  };

  static HlsCache& instance();

  // Cached synthesis of `kernel` (pre-expansion form; expansion is
  // deterministic and happens inside, once per entry) for `board`.
  std::shared_ptr<const Entry> synthesize(const kir::Kernel& kernel, const fpga::Board& board,
                                          const hls::HlsOptions& options);

  HlsCacheStats stats() const;
  // Tests only: drop every entry and zero the counters.
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Entry>> entries_;
  HlsCacheStats stats_;
};

}  // namespace fgpu::vcl
