// vcl — a miniature OpenCL-style host runtime with three device backends:
//
//   * the Vortex soft GPU (runtime/vortex_device.*): kernels are compiled
//     to Vortex ISA binaries and executed on the cycle-level simulator —
//     the paper's PoCL-runtime + Vortex flow (Fig. 5) and the sole timing
//     oracle,
//   * the Intel-HLS-like device (runtime/hls_device.*): kernels are
//     "synthesized" into a pipelined datapath model with an area report and
//     a fitter that can fail — the paper's AOC flow (Fig. 3), and
//   * the turbo functional tier (runtime/turbo_device.*): the same Vortex
//     binaries executed by a threaded-code binary translator — identical
//     output digests at interpreter-free speed, no timing claims (see
//     DESIGN.md "Execution tiers").
//
// Host code written against this API runs unmodified on either device,
// mirroring the paper's methodology ("identical source code (both host and
// kernel), differing only in the kernel binaries loaded").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "fpga/board.hpp"
#include "hls/synth_report.hpp"
#include "kir/kir.hpp"
#include "mem/memprof.hpp"
#include "mem/timing.hpp"
#include "vasm/program.hpp"
#include "vortex/perf.hpp"
#include "vortex/profile.hpp"

namespace fgpu::codegen {
struct CompiledKernel;
}

namespace fgpu::vcl {

// Device buffer handle (device address + size; data lives device-side).
struct Buffer {
  uint32_t device_addr = 0;
  size_t size_bytes = 0;
  bool valid() const { return device_addr != 0; }
};

// Kernel argument: buffer, i32 scalar, or f32 scalar (set_arg order follows
// the kernel's parameter declaration order).
using Arg = std::variant<Buffer, int32_t, float>;

// Per-access-site timing attribution of one HLS launch — the HLS-side
// analogue of the soft GPU's per-PC profile (fgpu.hlsprof.v1). Exact-sum
// contract: stall_cycles over a launch's sites sums to the launch's
// LaunchStats::memory_stall_cycles to the cycle.
struct HlsSiteStats {
  uint32_t site = 0;          // index into the design's access-site list
  std::string buffer;         // kernel parameter backing the site
  std::string source;         // KIR provenance: "<buffer>[<index-expr>]"
  std::string lsu;            // "burst" | "pipelined" | "store"
  std::string pattern;        // "consecutive" | "strided" | "irregular"
  bool in_loop = false;
  uint64_t requests = 0;      // dynamic accesses through the site
  uint64_t bytes = 0;         // off-chip traffic attributed to the site
  double occupancy_cycles = 0.0;  // memory-interface occupancy (drives the II)
  uint64_t stall_cycles = 0;  // share of memory_stall_cycles (exact sum)
};

struct LaunchStats {
  uint64_t device_cycles = 0;
  double clock_mhz = 0.0;
  double time_ms() const {
    return clock_mhz == 0.0 ? 0.0
                            : static_cast<double>(device_cycles) / (clock_mhz * 1e3);
  }

  // Soft-GPU detail.
  vortex::PerfCounters perf;
  mem::MemStats l1d, l2, dram;
  uint64_t dram_bytes = 0;
  // Per-PC issue/stall profile of this launch (enabled only when the
  // device's vortex::Config::profile is set).
  vortex::PcProfile profile;
  // Memory-hierarchy profile of this launch (miss classes, reuse
  // distances, occupancy histograms; enabled only when the device's
  // vortex::Config::memprof is set).
  mem::MemHierarchyProfile memprof;

  // HLS detail.
  uint64_t pipeline_depth = 0;
  uint64_t initiation_interval = 0;
  uint64_t memory_stall_cycles = 0;
  // Per-access-site attribution of this launch (empty on the soft GPU);
  // stall_cycles over these sites sums exactly to memory_stall_cycles.
  std::vector<HlsSiteStats> hls_sites;
  // HLS burst-LSU read-path shadow profile: the launch's global-load
  // address stream classified against a shadow cache of the soft-GPU L1D
  // reference geometry, by_tag keyed by AccessSite index (set only when
  // HlsDevice::set_memprof enabled it).
  bool hls_mem_enabled = false;
  mem::CacheMemProfile hls_mem;
};

// Result of building one kernel (per-kernel logs feed the coverage table).
struct KernelBuildInfo {
  std::string kernel;
  Status status;
  std::string log;                // human-readable detail
  fpga::AreaReport area;          // HLS: synthesized area
  double synthesis_hours = 0.0;   // HLS: modelled synthesis time (§IV-B)
  // HLS: structured synthesis report (per-module area rows + fitter
  // verdict), produced even for failed fits; synth.kernel is empty on the
  // soft GPU.
  hls::SynthReport synth;
  size_t binary_words = 0;        // soft GPU: instruction count
  bool barrier_dispatch = false;  // soft GPU: work-group dispatch used
  // Soft GPU: the kernel image and its PC -> KIR line table, kept so
  // profiles can be rendered as annotated disassembly after the run.
  vasm::Program binary;
  vasm::SourceMap source_map;
  // Soft GPU: the full cached compile (null on HLS). Exposes the
  // optimization-remark report (compiled->report) when the build ran with
  // collect_remarks; shared with the KernelCache entry, so replays carry
  // the byte-identical remark stream of the original compile.
  std::shared_ptr<const codegen::CompiledKernel> compiled;
};

class Device {
 public:
  virtual ~Device() = default;

  virtual std::string name() const = 0;
  virtual const fpga::Board& board() const = 0;

  // Memory management ----------------------------------------------------
  virtual Buffer alloc(size_t bytes) = 0;
  virtual void write(const Buffer& buffer, const void* data, size_t bytes,
                     size_t offset = 0) = 0;
  virtual void read(const Buffer& buffer, void* out, size_t bytes, size_t offset = 0) = 0;

  // Program build --------------------------------------------------------
  // Builds every kernel in the module. Returns an error if any kernel fails
  // (per-kernel detail in build_info()). A failed build leaves successfully
  // built kernels launchable, like clBuildProgram with multiple kernels.
  virtual Status build(const kir::Module& module) = 0;
  virtual const std::vector<KernelBuildInfo>& build_info() const = 0;
  const KernelBuildInfo* find_build_info(const std::string& kernel) const {
    for (const auto& info : build_info()) {
      if (info.kernel == kernel) return &info;
    }
    return nullptr;
  }

  // Lifecycle ------------------------------------------------------------
  // Returns the device to construction-time state without reallocating its
  // big structures (simulator arrays, page tables): drops built kernels,
  // buffers, console lines and all simulator-internal carry-over, so a
  // subsequent build/launch sequence produces bit-identical results AND
  // cycle counts to the same sequence on a freshly constructed device (the
  // device-pool contract, DESIGN.md "Device lifecycle"; asserted by
  // tests/test_lifecycle.cpp). Implementations may retain content-addressed
  // warm state (e.g. turbo block translations) only where it is proven
  // observationally neutral. Only valid between benchmarks, never
  // mid-benchmark.
  virtual void reset() = 0;

  // Execution ------------------------------------------------------------
  virtual Result<LaunchStats> launch(const std::string& kernel, const std::vector<Arg>& args,
                                     const kir::NDRange& ndrange) = 0;

  // OpenCL printf output captured from the device.
  virtual const std::vector<std::string>& console() const = 0;
  virtual void clear_console() = 0;

  // Convenience typed transfer helpers.
  template <typename T>
  Buffer upload(const std::vector<T>& data) {
    static_assert(sizeof(T) == 4, "device buffers are 32-bit element arrays");
    Buffer b = alloc(data.size() * 4);
    write(b, data.data(), data.size() * 4);
    return b;
  }
  template <typename T>
  std::vector<T> download(const Buffer& buffer) {
    static_assert(sizeof(T) == 4, "device buffers are 32-bit element arrays");
    std::vector<T> out(buffer.size_bytes / 4);
    read(buffer, out.data(), out.size() * 4);
    return out;
  }
};

}  // namespace fgpu::vcl
