// Process-wide compiled-kernel cache: memoizes codegen::compile_kernel
// results so re-building the same kernel — across --repeat iterations,
// across the vortex and turbo tiers (which share binaries by construction),
// and across any future long-running host (ROADMAP item 2, fgpu-serve) —
// costs a hash lookup instead of a full compile.
//
// Key: content digest of the KIR kernel (kir::kernel_digest — every
// semantic field, nothing derived) x a digest of every codegen::Options
// field (including the per-pass ablation switches) x a target identity
// string (vortex::Config::to_string() + board name). compile_kernel is a
// pure function of (kernel, options) — it clones its input and never reads
// device state — so equal keys imply byte-identical CompiledKernels; the
// target string is folded in anyway so a future target-dependent codegen
// cannot silently alias entries (the cache-key definition in DESIGN.md).
//
// Thread-safe: lookups and inserts take a mutex; compilation itself runs
// unlocked, so parallel suite workers never serialize on a compile. Two
// workers racing on the same key both compile and the first insert wins —
// both results are identical by purity, so this is waste, not a hazard.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "codegen/codegen.hpp"
#include "common/status.hpp"
#include "kir/kir.hpp"

namespace fgpu::vcl {

// Host-side counters of the cache (exported as fgpu.host.v1 "reuse" fields;
// never part of any byte-gated document).
struct KernelCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;    // one per actual compile (racing misses all count)
  double compile_ms = 0;  // wall spent inside codegen::compile_kernel
};

class KernelCache {
 public:
  // One per-kernel compile result: either a compiled kernel or the compile
  // error, both cacheable (a failing kernel fails identically every time).
  struct Entry {
    std::shared_ptr<const codegen::CompiledKernel> compiled;  // null on error
    Status status;  // ok() iff compiled != nullptr
  };

  static KernelCache& instance();

  // Returns the cached compile of `kernel` under `options` for `target`,
  // compiling (and inserting) on miss.
  Entry compile(const kir::Kernel& kernel, const codegen::Options& options,
                const std::string& target);

  KernelCacheStats stats() const;
  // Tests only: drop every entry and zero the counters.
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Entry>> entries_;
  KernelCacheStats stats_;
};

// Digest of every codegen::Options field (part of the cache key; also used
// by the device pool's identity string).
uint64_t options_digest(const codegen::Options& options);

}  // namespace fgpu::vcl
