#include "runtime/hls_device.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <utility>

#include "common/bits.hpp"
#include "kir/passes.hpp"
#include "trace/trace.hpp"

namespace fgpu::vcl {
namespace {

// Sustained off-chip bytes per kernel-clock cycle. HBM2's pseudo-channels
// give the MX2100 far more bandwidth than the SX2800's single DDR4 channel.
double bytes_per_cycle(const fpga::Board& board) {
  return board.dram.name == "hbm2" ? 256.0 : 32.0;
}

// Distributes a launch's bandwidth-stall cycles across its access sites in
// proportion to each site's off-chip traffic (the stall is bandwidth-bound
// by construction), using largest-remainder apportionment so the integer
// shares sum EXACTLY to `stall_total` — the fgpu.hlsprof.v1 exact-sum
// contract. Deterministic: remainder ties break on site order.
void attribute_stalls(uint64_t stall_total, std::vector<HlsSiteStats>& sites) {
  if (stall_total == 0 || sites.empty()) return;
  using u128 = unsigned __int128;
  u128 bytes_total = 0;
  for (const auto& s : sites) bytes_total += s.bytes;
  if (bytes_total == 0) return;  // no traffic implies bandwidth_cycles was 0
  uint64_t assigned = 0;
  std::vector<std::pair<u128, size_t>> remainders;
  remainders.reserve(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    const u128 numerator = static_cast<u128>(stall_total) * sites[i].bytes;
    sites[i].stall_cycles = static_cast<uint64_t>(numerator / bytes_total);
    assigned += sites[i].stall_cycles;
    remainders.emplace_back(numerator % bytes_total, i);
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  // Sum-of-floors is short of the total by at most sites.size() - 1.
  for (size_t k = 0; assigned < stall_total; ++k, ++assigned) {
    ++sites[remainders[k].second].stall_cycles;
  }
}

}  // namespace

HlsDevice::HlsDevice(const fpga::Board& board, hls::HlsOptions options)
    : board_(board), options_(options) {}

Buffer HlsDevice::alloc(size_t bytes) {
  const uint32_t addr = next_addr_;
  next_addr_ += static_cast<uint32_t>(align_up(bytes, 64)) + 64;
  buffers_[addr] = std::vector<uint32_t>((bytes + 3) / 4, 0u);
  return Buffer{addr, bytes};
}

void HlsDevice::write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) {
  auto& storage = buffers_.at(buffer.device_addr);
  std::memcpy(reinterpret_cast<uint8_t*>(storage.data()) + offset, data, bytes);
}

void HlsDevice::read(const Buffer& buffer, void* out, size_t bytes, size_t offset) {
  const auto& storage = buffers_.at(buffer.device_addr);
  std::memcpy(out, reinterpret_cast<const uint8_t*>(storage.data()) + offset, bytes);
}

Status HlsDevice::build(const kir::Module& module) {
  // Synthesis goes through the process-wide HlsCache: each entry owns a
  // builtin-expanded kernel clone and the design synthesized from it (the
  // access sites hold pointers into that clone, and the launch-time
  // interpreter runs the exact same nodes for site attribution — and so
  // that both backends compute bit-identical results from the same lowered
  // math). Repeated builds (device pool, --repeat) reuse the shared entry.
  entries_.clear();
  build_info_.clear();
  Status first_error;
  fpga::AreaReport total;
  for (const auto& kernel : module.kernels) {
    KernelBuildInfo info;
    info.kernel = kernel.name;
    auto entry = HlsCache::instance().synthesize(kernel, board_, options_);
    if (entry->status.is_ok()) {
      info.status = Status::ok();
      info.area = entry->design->area;
      info.synthesis_hours = entry->design->synthesis_hours;
      info.synth = entry->design->report;
      info.log = info.synth.render();
      entries_[kernel.name] = std::move(entry);
    } else {
      info.status = entry->status;
      info.log = entry->status.to_string();
      // The failed attempt still has a structured report: its area rows are
      // exactly the Table II "does not fit" data points.
      info.synth = entry->failed_synth;
      info.area = info.synth.total;
      info.synthesis_hours = info.synth.synthesis_hours;
      if (first_error.is_ok()) first_error = entry->status;
    }
    total += info.area;
    build_info_.push_back(std::move(info));
  }
  // All kernels of a .cl file share one bitstream: the module must fit as a
  // whole, even when each kernel fits individually. This check is per-build
  // (it depends on the kernel SET, not any one kernel), so it stays
  // device-side rather than in the cache.
  if (first_error.is_ok() && !board_.fits(total)) {
    const std::string resource = board_.bottleneck_resource(total);
    first_error = Status(
        ErrorKind::kResourceExceeded,
        module.name + ": fitter failed: Not enough " + resource + " (module needs " +
            std::to_string(total.brams) + " BRAM blocks, " + board_.name + " has " +
            std::to_string(board_.capacity.brams) + "; utilization " +
            std::to_string(static_cast<int>(board_.utilization(total) * 100.0)) + "%)");
    entries_.clear();  // nothing is launchable without a bitstream
    for (auto& info : build_info_) {
      if (info.status.is_ok()) info.status = first_error;
      info.synthesis_hours = hls::failed_attempt_hours(total, board_);
      // The kernel fit on its own; the module did not. Record the module
      // verdict so the structured report matches the build status.
      info.synth.fits = false;
      info.synth.verdict = "Not enough " + resource + " (module)";
      info.synth.synthesis_hours = info.synthesis_hours;
    }
  }
  return first_error;
}

void HlsDevice::reset() {
  entries_.clear();
  build_info_.clear();
  buffers_.clear();
  console_.clear();
  next_addr_ = 0x1000;
  memprof_enabled_ = false;
  memprof_lines_ = 1024;
  memprof_ways_ = 2;
}

Result<LaunchStats> HlsDevice::launch(const std::string& kernel_name,
                                      const std::vector<Arg>& args,
                                      const kir::NDRange& ndrange) {
  auto entry_it = entries_.find(kernel_name);
  if (entry_it == entries_.end()) {
    return Result<LaunchStats>(ErrorKind::kNotFound,
                               "kernel '" + kernel_name + "' was not synthesized");
  }
  const HlsCache::Entry& entry = *entry_it->second;
  const hls::HlsDesign& design = *entry.design;
  const kir::Kernel* kernel = &entry.kernel;
  if (args.size() != kernel->params.size()) {
    return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                               kernel_name + ": wrong argument count");
  }

  // Assemble interpreter arguments directly over the device-side storage.
  std::vector<kir::KernelArg> interp_args;
  std::vector<uint32_t> param_addr(args.size(), 0);  // flat base per buffer param
  for (size_t i = 0; i < args.size(); ++i) {
    if (const auto* buffer = std::get_if<Buffer>(&args[i])) {
      auto it = buffers_.find(buffer->device_addr);
      if (it == buffers_.end()) {
        return Result<LaunchStats>(ErrorKind::kInvalidArgument, "unknown buffer argument");
      }
      param_addr[i] = buffer->device_addr;
      interp_args.push_back(kir::KernelArg::buffer(&it->second));
    } else if (const auto* iv = std::get_if<int32_t>(&args[i])) {
      interp_args.push_back(kir::KernelArg::scalar_i32(*iv));
    } else {
      interp_args.push_back(kir::KernelArg::scalar_f32(std::get<float>(args[i])));
    }
  }

  // Dynamic request counts per access site drive the timing model.
  std::unordered_map<const void*, uint64_t> dyn_requests;
  kir::InterpOptions interp_options;
  interp_options.print_sink = [this](const std::string& line) { console_.push_back(line); };
  interp_options.on_load = [&](const kir::Expr* site) { ++dyn_requests[site]; };
  interp_options.on_store = [&](const kir::Stmt* site) { ++dyn_requests[site]; };

  // Memory-hierarchy shadow profiling (see set_memprof): every global load
  // becomes a flat device address fed through a shadow cache of the
  // soft-GPU L1D geometry; misses are 3C-classified per AccessSite.
  std::unique_ptr<mem::ShadowCacheSim> shadow;
  std::unordered_map<const void*, uint32_t> load_site_index;
  if (memprof_enabled_) {
    shadow = std::make_unique<mem::ShadowCacheSim>(memprof_lines_, memprof_ways_);
    for (size_t i = 0; i < design.dfg.sites.size(); ++i) {
      const hls::AccessSite& site = design.dfg.sites[i];
      if (!site.is_store) load_site_index[site.site] = static_cast<uint32_t>(i);
    }
    interp_options.on_load_addr = [&](const kir::Expr* site, int buffer, bool is_local,
                                      uint32_t elem) {
      if (is_local) return;  // on-chip memory, not the burst-LSU read path
      const auto it = load_site_index.find(site);
      const uint32_t tag = it == load_site_index.end() ? ~0u : it->second;
      const uint32_t addr = param_addr[static_cast<size_t>(buffer)] + elem * 4u;
      shadow->access(mem::line_of(addr), tag);
    };
  }

  // The entry's kernel was expanded at synthesis time; the interpreter runs
  // the very nodes the access sites point at.
  kir::Interpreter interp(interp_options);
  if (auto st = interp.run(*kernel, interp_args, ndrange); !st.is_ok()) {
    return Result<LaunchStats>(st.kind(), st.message());
  }

  // Timing: NDRange iterative work-item issue. One item enters the pipeline
  // per II cycles; II is bound by per-item memory-interface occupancy, and
  // total runtime additionally by off-chip bandwidth.
  const double items = static_cast<double>(ndrange.global_items());
  double occupancy_cycles = 0.0;  // total memory-interface cycles
  double bytes_moved = 0.0;
  LaunchStats stats;
  stats.hls_sites.reserve(design.dfg.sites.size());
  for (size_t i = 0; i < design.dfg.sites.size(); ++i) {
    const hls::AccessSite& site = design.dfg.sites[i];
    auto it = dyn_requests.find(site.site);
    const uint64_t requests = it == dyn_requests.end() ? 0 : it->second;
    HlsSiteStats ss;
    ss.site = static_cast<uint32_t>(i);
    ss.buffer = site.buffer_name;
    ss.source = site.source;
    ss.lsu = site.is_store ? "store" : site.pipelined ? "pipelined" : "burst";
    ss.pattern = hls::to_string(site.pattern);
    ss.in_loop = site.in_loop;
    ss.requests = requests;
    ss.bytes = requests * (site.pattern == hls::AccessPattern::kConsecutive ? 4 : 64);
    ss.occupancy_cycles = static_cast<double>(requests) * hls::request_cost(site);
    occupancy_cycles += ss.occupancy_cycles;
    bytes_moved += static_cast<double>(ss.bytes);
    stats.hls_sites.push_back(std::move(ss));
  }
  const double ii = std::max(1.0, occupancy_cycles / std::max(1.0, items));
  const double issue_cycles = items * ii;
  const double bandwidth_cycles = bytes_moved / bytes_per_cycle(board_);
  const double total =
      static_cast<double>(design.pipeline_depth) + std::max(issue_cycles, bandwidth_cycles);

  stats.device_cycles = static_cast<uint64_t>(total);
  stats.clock_mhz = board_.hls_kernel_clock_mhz;
  stats.pipeline_depth = design.pipeline_depth;
  stats.initiation_interval = static_cast<uint64_t>(std::ceil(ii));
  stats.memory_stall_cycles =
      static_cast<uint64_t>(std::max(0.0, bandwidth_cycles - issue_cycles));
  stats.dram_bytes = static_cast<uint64_t>(bytes_moved);
  attribute_stalls(stats.memory_stall_cycles, stats.hls_sites);
  if (shadow) {
    stats.hls_mem_enabled = true;
    stats.hls_mem = shadow->profile();
  }
  if (trace::Sink* sink = trace::kEnabled ? trace::current() : nullptr) {
    sink->set_thread_name(0, "hls-pipeline");
    sink->complete(sink->intern(kernel_name), "kernel", 0, 0, stats.device_cycles,
                   {{"pipeline_depth", stats.pipeline_depth},
                    {"initiation_interval", stats.initiation_interval},
                    {"memory_stall_cycles", stats.memory_stall_cycles},
                    {"items", ndrange.global_items()},
                    {"dram_bytes", stats.dram_bytes}});
    // One counter track per access site, so the Perfetto view shows which
    // LSU the launch's traffic and bandwidth stalls land on — side by side
    // with the soft GPU's stall tracks from the same suite run.
    for (const auto& site : stats.hls_sites) {
      const char* track = sink->intern("hls-site " + std::to_string(site.site) + " " + site.source);
      sink->counter(track, 0, 0, {{"requests", 0}, {"stall_cycles", 0}});
      sink->counter(track, 0, stats.device_cycles,
                    {{"requests", site.requests}, {"stall_cycles", site.stall_cycles}});
    }
    sink->set_time_base(sink->time_base() + stats.device_cycles + 1);
  }
  return stats;
}

}  // namespace fgpu::vcl
