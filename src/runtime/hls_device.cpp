#include "runtime/hls_device.hpp"

#include <cmath>
#include <cstring>

#include "common/bits.hpp"
#include "kir/passes.hpp"
#include "trace/trace.hpp"

namespace fgpu::vcl {
namespace {

// Sustained off-chip bytes per kernel-clock cycle. HBM2's pseudo-channels
// give the MX2100 far more bandwidth than the SX2800's single DDR4 channel.
double bytes_per_cycle(const fpga::Board& board) {
  return board.dram.name == "hbm2" ? 256.0 : 32.0;
}

}  // namespace

HlsDevice::HlsDevice(const fpga::Board& board, hls::HlsOptions options)
    : board_(board), options_(options) {}

Buffer HlsDevice::alloc(size_t bytes) {
  const uint32_t addr = next_addr_;
  next_addr_ += static_cast<uint32_t>(align_up(bytes, 64)) + 64;
  buffers_[addr] = std::vector<uint32_t>((bytes + 3) / 4, 0u);
  return Buffer{addr, bytes};
}

void HlsDevice::write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) {
  auto& storage = buffers_.at(buffer.device_addr);
  std::memcpy(reinterpret_cast<uint8_t*>(storage.data()) + offset, data, bytes);
}

void HlsDevice::read(const Buffer& buffer, void* out, size_t bytes, size_t offset) {
  const auto& storage = buffers_.at(buffer.device_addr);
  std::memcpy(out, reinterpret_cast<const uint8_t*>(storage.data()) + offset, bytes);
}

Status HlsDevice::build(const kir::Module& module) {
  // Deep-clone and expand builtins once: the synthesized access sites hold
  // pointers into these kernels, and the launch-time interpreter must run
  // the exact same nodes for site attribution (and so that both backends
  // compute bit-identical results from the same lowered math).
  module_ = module;
  for (auto& kernel : module_.kernels) {
    kernel = kir::clone_kernel(kernel);
    kir::expand_builtins(kernel);
  }
  designs_.clear();
  build_info_.clear();
  Status first_error;
  fpga::AreaReport total;
  for (const auto& kernel : module_.kernels) {
    KernelBuildInfo info;
    info.kernel = kernel.name;
    auto design = hls::synthesize(kernel, board_, options_);
    if (design.is_ok()) {
      info.status = Status::ok();
      info.area = design->area;
      info.synthesis_hours = design->synthesis_hours;
      info.log = design->report;
      designs_[kernel.name] = design.take();
    } else {
      info.status = design.status();
      info.log = design.status().to_string();
      info.area = hls::estimate_area(hls::analyze(kernel));
      info.synthesis_hours = hls::failed_attempt_hours(info.area, board_);
      if (first_error.is_ok()) first_error = design.status();
    }
    total += info.area;
    build_info_.push_back(std::move(info));
  }
  // All kernels of a .cl file share one bitstream: the module must fit as a
  // whole, even when each kernel fits individually.
  if (first_error.is_ok() && !board_.fits(total)) {
    const std::string resource = board_.bottleneck_resource(total);
    first_error = Status(
        ErrorKind::kResourceExceeded,
        module_.name + ": fitter failed: Not enough " + resource + " (module needs " +
            std::to_string(total.brams) + " BRAM blocks, " + board_.name + " has " +
            std::to_string(board_.capacity.brams) + "; utilization " +
            std::to_string(static_cast<int>(board_.utilization(total) * 100.0)) + "%)");
    designs_.clear();  // nothing is launchable without a bitstream
    for (auto& info : build_info_) {
      if (info.status.is_ok()) info.status = first_error;
      info.synthesis_hours = hls::failed_attempt_hours(total, board_);
    }
  }
  return first_error;
}

Result<LaunchStats> HlsDevice::launch(const std::string& kernel_name,
                                      const std::vector<Arg>& args,
                                      const kir::NDRange& ndrange) {
  auto design_it = designs_.find(kernel_name);
  if (design_it == designs_.end()) {
    return Result<LaunchStats>(ErrorKind::kNotFound,
                               "kernel '" + kernel_name + "' was not synthesized");
  }
  const hls::HlsDesign& design = design_it->second;
  const kir::Kernel* kernel = module_.find(kernel_name);
  if (kernel == nullptr || args.size() != kernel->params.size()) {
    return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                               kernel_name + ": wrong argument count");
  }

  // Assemble interpreter arguments directly over the device-side storage.
  std::vector<kir::KernelArg> interp_args;
  for (size_t i = 0; i < args.size(); ++i) {
    if (const auto* buffer = std::get_if<Buffer>(&args[i])) {
      auto it = buffers_.find(buffer->device_addr);
      if (it == buffers_.end()) {
        return Result<LaunchStats>(ErrorKind::kInvalidArgument, "unknown buffer argument");
      }
      interp_args.push_back(kir::KernelArg::buffer(&it->second));
    } else if (const auto* iv = std::get_if<int32_t>(&args[i])) {
      interp_args.push_back(kir::KernelArg::scalar_i32(*iv));
    } else {
      interp_args.push_back(kir::KernelArg::scalar_f32(std::get<float>(args[i])));
    }
  }

  // Dynamic request counts per access site drive the timing model.
  std::unordered_map<const void*, uint64_t> dyn_requests;
  kir::InterpOptions interp_options;
  interp_options.print_sink = [this](const std::string& line) { console_.push_back(line); };
  interp_options.on_load = [&](const kir::Expr* site) { ++dyn_requests[site]; };
  interp_options.on_store = [&](const kir::Stmt* site) { ++dyn_requests[site]; };

  // module_ was expanded at build time; the interpreter runs the very nodes
  // the access sites point at.
  kir::Interpreter interp(interp_options);
  if (auto st = interp.run(*kernel, interp_args, ndrange); !st.is_ok()) {
    return Result<LaunchStats>(st.kind(), st.message());
  }

  // Timing: NDRange iterative work-item issue. One item enters the pipeline
  // per II cycles; II is bound by per-item memory-interface occupancy, and
  // total runtime additionally by off-chip bandwidth.
  const double items = static_cast<double>(ndrange.global_items());
  double occupancy_cycles = 0.0;  // total memory-interface cycles
  double bytes_moved = 0.0;
  for (const auto& site : design.dfg.sites) {
    auto it = dyn_requests.find(site.site);
    const double requests = it == dyn_requests.end() ? 0.0 : static_cast<double>(it->second);
    occupancy_cycles += requests * hls::request_cost(site);
    bytes_moved += requests * (site.pattern == hls::AccessPattern::kConsecutive ? 4.0 : 64.0);
  }
  const double ii = std::max(1.0, occupancy_cycles / std::max(1.0, items));
  const double issue_cycles = items * ii;
  const double bandwidth_cycles = bytes_moved / bytes_per_cycle(board_);
  const double total =
      static_cast<double>(design.pipeline_depth) + std::max(issue_cycles, bandwidth_cycles);

  LaunchStats stats;
  stats.device_cycles = static_cast<uint64_t>(total);
  stats.clock_mhz = board_.hls_kernel_clock_mhz;
  stats.pipeline_depth = design.pipeline_depth;
  stats.initiation_interval = static_cast<uint64_t>(std::ceil(ii));
  stats.memory_stall_cycles =
      static_cast<uint64_t>(std::max(0.0, bandwidth_cycles - issue_cycles));
  stats.dram_bytes = static_cast<uint64_t>(bytes_moved);
  if (trace::Sink* sink = trace::kEnabled ? trace::current() : nullptr) {
    sink->set_thread_name(0, "hls-pipeline");
    sink->complete(sink->intern(kernel_name), "kernel", 0, 0, stats.device_cycles,
                   {{"pipeline_depth", stats.pipeline_depth},
                    {"initiation_interval", stats.initiation_interval},
                    {"memory_stall_cycles", stats.memory_stall_cycles},
                    {"items", ndrange.global_items()},
                    {"dram_bytes", stats.dram_bytes}});
    sink->set_time_base(sink->time_base() + stats.device_cycles + 1);
  }
  return stats;
}

}  // namespace fgpu::vcl
