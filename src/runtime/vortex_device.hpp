// Soft-GPU device backend: compiles KIR kernels with codegen/ and executes
// them on the vortex/ cycle-level cluster (the paper's Vortex + PoCL flow).
#pragma once

#include <unordered_map>

#include "codegen/codegen.hpp"
#include "mem/memory.hpp"
#include "runtime/runtime.hpp"
#include "vortex/cluster.hpp"

namespace fgpu::vcl {

class VortexDevice final : public Device {
 public:
  explicit VortexDevice(vortex::Config config = {},
                        const fpga::Board& board = fpga::stratix10_sx2800(),
                        codegen::Options codegen_options = {});

  std::string name() const override;
  const fpga::Board& board() const override { return board_; }

  Buffer alloc(size_t bytes) override;
  void write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) override;
  void read(const Buffer& buffer, void* out, size_t bytes, size_t offset) override;

  Status build(const kir::Module& module) override;
  const std::vector<KernelBuildInfo>& build_info() const override { return build_info_; }

  Result<LaunchStats> launch(const std::string& kernel, const std::vector<Arg>& args,
                             const kir::NDRange& ndrange) override;

  const std::vector<std::string>& console() const override { return console_; }
  void clear_console() override { console_.clear(); }

  const vortex::Config& config() const { return config_; }
  // Direct access for tests.
  mem::MainMemory& memory() { return memory_; }

 private:
  struct Built {
    codegen::CompiledKernel compiled;
    const kir::Kernel* kernel = nullptr;  // points into module copy
  };

  vortex::Config config_;
  fpga::Board board_;
  codegen::Options codegen_options_;
  mem::MainMemory memory_;
  std::unique_ptr<vortex::Cluster> cluster_;
  kir::Module module_;  // retained copy so Built::kernel stays valid
  std::unordered_map<std::string, Built> kernels_;
  std::vector<KernelBuildInfo> build_info_;
  std::vector<std::string> console_;
  std::unordered_map<uint64_t, std::string> print_partial_;  // per (core,warp,lane)
  uint32_t heap_next_ = 0;
};

}  // namespace fgpu::vcl
