// Soft-GPU device backend: compiles KIR kernels with codegen/ and executes
// them on the vortex/ cycle-level cluster (the paper's Vortex + PoCL flow).
#pragma once

#include <memory>
#include <unordered_map>

#include "codegen/codegen.hpp"
#include "mem/memory.hpp"
#include "runtime/console.hpp"
#include "runtime/runtime.hpp"
#include "vortex/cluster.hpp"

namespace fgpu::vcl {

class VortexDevice final : public Device {
 public:
  explicit VortexDevice(vortex::Config config = {},
                        const fpga::Board& board = fpga::stratix10_sx2800(),
                        codegen::Options codegen_options = {});

  std::string name() const override;
  const fpga::Board& board() const override { return board_; }

  Buffer alloc(size_t bytes) override;
  void write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) override;
  void read(const Buffer& buffer, void* out, size_t bytes, size_t offset) override;

  Status build(const kir::Module& module) override;
  const std::vector<KernelBuildInfo>& build_info() const override { return build_info_; }

  // Device-pool re-arm: drops module/kernels/buffers/console and hard-resets
  // the cluster (cores, L1s, L2, DRAM, NoC) so the next build/launch sequence
  // is cycle-identical to one on a fresh device. Compiled binaries live in
  // the process-wide KernelCache, not here, so nothing warm is lost.
  void reset() override;

  Result<LaunchStats> launch(const std::string& kernel, const std::vector<Arg>& args,
                             const kir::NDRange& ndrange) override;

  const std::vector<std::string>& console() const override { return console_.lines(); }
  void clear_console() override { console_.clear(); }

  const vortex::Config& config() const { return config_; }
  // Direct access for tests.
  mem::MainMemory& memory() { return memory_; }

 private:
  struct Built {
    // Shared with the process-wide KernelCache (immutable once compiled).
    std::shared_ptr<const codegen::CompiledKernel> compiled;
    const kir::Kernel* kernel = nullptr;  // points into module copy
  };

  vortex::Config config_;
  fpga::Board board_;
  codegen::Options codegen_options_;
  mem::MainMemory memory_;
  std::unique_ptr<vortex::Cluster> cluster_;
  kir::Module module_;  // retained copy so Built::kernel stays valid
  std::unordered_map<std::string, Built> kernels_;
  std::vector<KernelBuildInfo> build_info_;
  EcallConsole console_;
  uint32_t heap_next_ = 0;
};

}  // namespace fgpu::vcl
