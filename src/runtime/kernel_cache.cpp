#include "runtime/kernel_cache.hpp"

#include <chrono>

#include "kir/digest.hpp"

namespace fgpu::vcl {
namespace {

uint64_t fnv_mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t fnv_str(uint64_t h, const std::string& s) {
  h = fnv_mix(h, s.size());
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t options_digest(const codegen::Options& options) {
  uint64_t h = 14695981039346656037ull;
  h = fnv_mix(h, options.uniform_branch_opt ? 1 : 0);
  h = fnv_mix(h, options.force_group_dispatch ? 1 : 0);
  h = fnv_mix(h, static_cast<uint64_t>(options.distribution));
  h = fnv_mix(h, static_cast<uint64_t>(options.opt_level));
  h = fnv_mix(h, (options.ablate.kir_licm ? 1u : 0u) | (options.ablate.kir_strength_reduce ? 2u : 0u) |
                     (options.ablate.kir_dce ? 4u : 0u) | (options.ablate.peephole ? 8u : 0u) |
                     (options.ablate.pressure_ladder ? 16u : 0u));
  // collect_remarks changes only CompiledKernel::report, never the binary,
  // but a report-less cached entry must not satisfy a remark-collecting
  // compile (and vice versa), so it is part of the key.
  h = fnv_mix(h, options.collect_remarks ? 1 : 0);
  return h;
}

KernelCache& KernelCache::instance() {
  static KernelCache cache;
  return cache;
}

KernelCache::Entry KernelCache::compile(const kir::Kernel& kernel,
                                        const codegen::Options& options,
                                        const std::string& target) {
  uint64_t key = kir::kernel_digest(kernel);
  key = fnv_mix(key, options_digest(options));
  key = fnv_str(key, target);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return *it->second;
    }
  }

  // Miss: compile unlocked (the expensive part; parallel workers must not
  // serialize here), then insert first-wins.
  const auto t0 = std::chrono::steady_clock::now();
  auto compiled = codegen::compile_kernel(kernel, options);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  auto entry = std::make_shared<Entry>();
  if (compiled.is_ok()) {
    entry->compiled = std::make_shared<const codegen::CompiledKernel>(compiled.take());
    entry->status = Status::ok();
  } else {
    entry->status = compiled.status();
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  stats_.compile_ms += ms;
  auto [it, inserted] = entries_.emplace(key, entry);
  // On a race the earlier insert wins; both entries are identical by the
  // purity argument in the header, so returning ours is equivalent.
  (void)inserted;
  return *it->second;
}

KernelCacheStats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = KernelCacheStats{};
}

}  // namespace fgpu::vcl
