#include "runtime/turbo_device.hpp"

#include <map>

#include "codegen/abi.hpp"
#include "common/bits.hpp"
#include "runtime/kernel_cache.hpp"

namespace fgpu::vcl {

TurboDevice::TurboDevice(vortex::Config config, const fpga::Board& board,
                         codegen::Options codegen_options)
    : config_(config),
      board_(board),
      codegen_options_(codegen_options),
      heap_next_(arch::kHeapBase) {
  config_.dram = board_.dram;
  engine_ = std::make_unique<vortex::jit::TurboEngine>(config_, memory_, console_.handler());
}

std::string TurboDevice::name() const {
  return "turbo-" + config_.to_string() + "@" + board_.name;
}

Buffer TurboDevice::alloc(size_t bytes) {
  const uint32_t addr = heap_next_;
  heap_next_ = static_cast<uint32_t>(align_up(heap_next_ + bytes, 64));
  return Buffer{addr, bytes};
}

void TurboDevice::write(const Buffer& buffer, const void* data, size_t bytes, size_t offset) {
  memory_.write(buffer.device_addr + static_cast<uint32_t>(offset), data,
                static_cast<uint32_t>(bytes));
}

void TurboDevice::read(const Buffer& buffer, void* out, size_t bytes, size_t offset) {
  memory_.read(buffer.device_addr + static_cast<uint32_t>(offset), out,
               static_cast<uint32_t>(bytes));
}

namespace {

// Digest of a build's binary set: kernel names + image placement + every
// instruction word. Equal digests mean the code regions the translator will
// see are byte-identical, so translated blocks carry over.
uint64_t binary_set_digest(const std::map<std::string, const vasm::Program*>& programs) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [name, program] : programs) {
    mix(name.size());
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    mix(program->base);
    mix(program->words.size());
    for (const uint32_t w : program->words) mix(w);
  }
  return h;
}

}  // namespace

Status TurboDevice::build(const kir::Module& module) {
  module_ = module;
  kernels_.clear();
  build_info_.clear();
  loaded_kernel_.clear();
  Status first_error;
  const std::string target = config_.to_string() + "@" + board_.name;
  for (const auto& kernel : module_.kernels) {
    KernelBuildInfo info;
    info.kernel = kernel.name;
    auto entry = KernelCache::instance().compile(kernel, codegen_options_, target);
    if (entry.status.is_ok()) {
      const codegen::CompiledKernel& compiled = *entry.compiled;
      info.status = Status::ok();
      info.binary_words = compiled.program.words.size();
      info.barrier_dispatch = compiled.barrier_dispatch;
      info.log = "compiled to " + std::to_string(info.binary_words) + " instructions (" +
                 (compiled.barrier_dispatch ? "work-group dispatch" : "grid-stride dispatch") +
                 ", " + std::to_string(compiled.spill_slots) + " spill slots)";
      info.binary = compiled.program;
      info.source_map = compiled.source_map;
      info.compiled = entry.compiled;
      kernels_[kernel.name] = Built{entry.compiled, &kernel};
    } else {
      info.status = entry.status;
      info.log = entry.status.to_string();
      if (first_error.is_ok()) first_error = entry.status;
    }
    build_info_.push_back(std::move(info));
  }

  // Translation-cache verdict. Ordinary rebuild on a live device: the code
  // region's contents are about to change, so every translated block is
  // stale — invalidate (counted, as before). Rebuild after reset() (device
  // pool): a byte-identical binary set keeps its translations (the warm
  // --repeat case); anything else drops them silently, matching what a
  // fresh device's empty caches would have looked like.
  std::map<std::string, const vasm::Program*> programs;
  for (const auto& [name, built] : kernels_) programs[name] = &built.compiled->program;
  const uint64_t digest = binary_set_digest(programs);
  if (pending_block_drop_) {
    if (digest != warm_digest_) engine_->reset_blocks();
    pending_block_drop_ = false;
  } else {
    engine_->invalidate();
  }
  warm_digest_ = digest;
  return first_error;
}

void TurboDevice::reset() {
  module_ = {};
  kernels_.clear();
  build_info_.clear();
  memory_.clear();
  console_.clear();
  loaded_kernel_.clear();  // code region was cleared: force a rewrite
  heap_next_ = arch::kHeapBase;
  // Translated blocks survive until the next build() rules on them;
  // cumulative engine counters are left alone (callers that report
  // per-benchmark figures snapshot deltas around each run).
  pending_block_drop_ = true;
}

Result<LaunchStats> TurboDevice::launch(const std::string& kernel_name,
                                        const std::vector<Arg>& args,
                                        const kir::NDRange& ndrange) {
  auto it = kernels_.find(kernel_name);
  if (it == kernels_.end()) {
    return Result<LaunchStats>(ErrorKind::kNotFound, "kernel '" + kernel_name + "' not built");
  }
  const Built& built = it->second;
  const kir::Kernel& kernel = *built.kernel;
  if (args.size() != kernel.params.size()) {
    return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                               kernel_name + ": wrong argument count");
  }
  for (int d = 0; d < 3; ++d) {
    if (ndrange.local[d] == 0 || ndrange.global[d] % ndrange.local[d] != 0) {
      return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                                 kernel_name + ": global size not divisible by local size");
    }
  }
  const uint32_t local_total = ndrange.local_items();
  uint32_t nbw = 0;
  if (built.compiled->barrier_dispatch) {
    const uint32_t lanes = config_.warps * config_.threads;
    if (local_total > lanes) {
      return Result<LaunchStats>(
          ErrorKind::kInvalidArgument,
          kernel_name + ": work-group size " + std::to_string(local_total) +
              " exceeds hardware parallelism W*T=" + std::to_string(lanes) +
              " required by the work-group dispatch mapping");
    }
    nbw = (local_total + config_.threads - 1) / config_.threads;
  }
  if (kernel.local_bytes() > arch::kLocalSize) {
    return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                               kernel_name + ": __local memory exceeds device capacity");
  }

  // Load the kernel binary. Switching kernels rewrites the code region and
  // selects that kernel's block cache — each kernel of a build keeps its
  // own, so alternating launch sequences (gaussian's Fan1/Fan2 sweep) stay
  // warm; only build() invalidates translations.
  if (loaded_kernel_ != kernel_name) {
    memory_.write(built.compiled->program.base, built.compiled->program.words.data(),
                  built.compiled->program.size_bytes());
    engine_->select_kernel(kernel_name);
    loaded_kernel_ = kernel_name;
  }

  // Write the argument block (see codegen/abi.hpp).
  namespace abi = codegen::abi;
  auto w32 = [&](uint32_t offset, uint32_t value) {
    memory_.store32(arch::kArgBase + offset, value);
  };
  w32(abi::kDims, ndrange.dims);
  for (int d = 0; d < 3; ++d) {
    w32(abi::kGlobal0 + 4 * static_cast<uint32_t>(d), ndrange.global[d]);
    w32(abi::kLocal0 + 4 * static_cast<uint32_t>(d), ndrange.local[d]);
    w32(abi::kNumGroups0 + 4 * static_cast<uint32_t>(d),
        ndrange.num_groups(static_cast<uint32_t>(d)));
  }
  w32(abi::kTotalItems, static_cast<uint32_t>(ndrange.global_items()));
  w32(abi::kLocalTotal, local_total);
  w32(abi::kNbw, nbw);
  w32(abi::kTotalGroups, static_cast<uint32_t>(ndrange.total_groups()));
  for (size_t i = 0; i < args.size(); ++i) {
    uint32_t bits = 0;
    if (const auto* buffer = std::get_if<Buffer>(&args[i])) {
      if (!kernel.params[i].is_buffer) {
        return Result<LaunchStats>(ErrorKind::kInvalidArgument,
                                   kernel_name + ": buffer passed for scalar param");
      }
      bits = buffer->device_addr;
    } else if (const auto* iv = std::get_if<int32_t>(&args[i])) {
      bits = static_cast<uint32_t>(*iv);
    } else {
      bits = f2u(std::get<float>(args[i]));
    }
    w32(abi::arg_offset(static_cast<uint32_t>(i)), bits);
  }

  const Status status = engine_->run(built.compiled->program.entry());
  if (!status.is_ok()) return Result<LaunchStats>(status.kind(), status.message());
  console_.flush();

  // Functional tier: no cycle claim, ever. device_cycles/clock_mhz stay 0
  // (so time_ms() is 0) and only perf.instrs is populated, which is what
  // suite::run_benchmark accumulates into DeviceRun::total_instrs.
  LaunchStats out;
  out.perf.instrs = engine_->last_run_instrs();
  return out;
}

}  // namespace fgpu::vcl
