// Host-side ECALL console shared by the execution-tier device backends
// (runtime/vortex_device.cpp, runtime/turbo_device.cpp). Assembles printf
// output per work item: lanes of a warp execute the same ECALL in lockstep,
// so a shared buffer would interleave characters from different items.
#pragma once

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/isa.hpp"
#include "common/bits.hpp"
#include "mem/memory.hpp"
#include "vortex/core.hpp"

namespace fgpu::vcl {

class EcallConsole {
 public:
  // The EcallHandler to install on a cluster/engine. Captures `this`; the
  // console must outlive the simulator it is attached to.
  vortex::EcallHandler handler() {
    return [this](const vortex::EcallRequest& req, mem::MainMemory& memory) {
      const uint64_t key = (static_cast<uint64_t>(req.core_id) << 32) |
                           (static_cast<uint64_t>(req.warp_id) << 8) | req.lane;
      std::string& partial = partial_[key];
      char buf[48];
      switch (req.function) {
        case arch::kEcallPutChar:
          if (static_cast<char>(req.arg0) == '\n') {
            lines_.push_back(partial);
            partial.clear();
          } else {
            partial += static_cast<char>(req.arg0);
          }
          return;
        case arch::kEcallPrintInt:
          std::snprintf(buf, sizeof(buf), "%d", static_cast<int32_t>(req.arg0));
          partial += buf;
          return;
        case arch::kEcallPrintFlt:
          std::snprintf(buf, sizeof(buf), "%f", u2f(req.arg0));
          partial += buf;
          return;
        case arch::kEcallPrintStr: {
          uint32_t addr = req.arg0;
          for (char c; (c = static_cast<char>(memory.load8(addr))) != 0; ++addr) {
            partial += c;
          }
          return;
        }
        default:
          return;
      }
    };
  }

  // Emits unterminated partial lines; call at end of launch so output
  // missing a trailing '\n' still reaches the console.
  void flush() {
    for (auto& [key, partial] : partial_) {
      if (!partial.empty()) lines_.push_back(partial);
    }
    partial_.clear();
  }

  const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
  std::unordered_map<uint64_t, std::string> partial_;  // per (core,warp,lane)
};

}  // namespace fgpu::vcl
