// Reference-interpreter tests: SIMT semantics (masks, loops, barriers),
// dynamic safety checks (out-of-bounds, barrier divergence, runaway
// guards), atomics, printf formatting, and instrumentation hooks.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "kir/build.hpp"
#include "kir/interp.hpp"

namespace fgpu::kir {
namespace {

TEST(InterpTest, OutOfBoundsLoadIsReported) {
  KernelBuilder kb("oob");
  Buf a = kb.buf_i32("a"), out = kb.buf_i32("out");
  kb.store(out, Val(0), kb.load(a, Val(100)));
  std::vector<uint32_t> data(4), result(4);
  Interpreter interp;
  auto status = interp.run(kb.build(), {KernelArg::buffer(&data), KernelArg::buffer(&result)},
                           NDRange::linear(1, 1));
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("out-of-bounds"), std::string::npos);
  EXPECT_NE(status.message().find("a[100]"), std::string::npos);
}

TEST(InterpTest, OutOfBoundsLocalIsReported) {
  KernelBuilder kb("oob_local");
  Buf tile = kb.local_i32("tile", 8);
  kb.store(tile, Val(9), Val(1));
  Interpreter interp;
  auto status = interp.run(kb.build(), {}, NDRange::linear(1, 1));
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("__local"), std::string::npos);
}

TEST(InterpTest, BarrierUnderDivergenceIsAnError) {
  KernelBuilder kb("bad_barrier");
  kb.if_(kb.local_id(0) < 2, [&] { kb.barrier(); });
  Interpreter interp;
  auto status = interp.run(kb.build(), {}, NDRange::linear(4, 4));
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("divergent"), std::string::npos);
}

TEST(InterpTest, RunawayLoopHitsStatementBudget) {
  KernelBuilder kb("forever");
  Val go = kb.let_("go", Val(1));
  kb.while_(go == 1, [&] {});
  InterpOptions options;
  options.max_statements = 10'000;
  Interpreter interp(options);
  auto status = interp.run(kb.build(), {}, NDRange::linear(1, 1));
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("budget"), std::string::npos);
}

TEST(InterpTest, ShortCircuitPreventsOobEvaluation) {
  // gid < n && a[gid] -- the second operand must not evaluate when the
  // first is false (the guard idiom every benchmark uses).
  KernelBuilder kb("guard");
  Buf a = kb.buf_i32("a"), out = kb.buf_i32("out");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(gid < n && kb.load(a, gid) > 0, [&] { kb.store(out, gid, Val(1)); });
  std::vector<uint32_t> data = {5, 6};  // only 2 elements; launch is 4 wide
  std::vector<uint32_t> result(4, 0);
  Interpreter interp;
  auto status =
      interp.run(kb.build(), {KernelArg::buffer(&data), KernelArg::buffer(&result),
                              KernelArg::scalar_i32(2)},
                 NDRange::linear(4, 4));
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(result, (std::vector<uint32_t>{1, 1, 0, 0}));
}

TEST(InterpTest, SimtMasksInNestedControlFlow) {
  KernelBuilder kb("masks");
  Buf out = kb.buf_i32("out");
  Val lid = kb.local_id(0);
  Val v = kb.let_("v", Val(0));
  kb.if_(lid < 4, [&] {
    kb.for_("i", Val(0), lid + 1, [&](Val) { kb.assign(v, v + 10); });
  }, [&] { kb.assign(v, 999); });
  kb.store(out, kb.global_id(0), v);
  std::vector<uint32_t> result(8, 0);
  Interpreter interp;
  ASSERT_TRUE(interp.run(kb.build(), {KernelArg::buffer(&result)}, NDRange::linear(8, 8)).is_ok());
  EXPECT_EQ(result, (std::vector<uint32_t>{10, 20, 30, 40, 999, 999, 999, 999}));
}

TEST(InterpTest, WhileReevaluatesCondition) {
  KernelBuilder kb("halving");
  Buf out = kb.buf_i32("out");
  Val v = kb.let_("v", Val(100));
  Val steps = kb.let_("steps", Val(0));
  kb.while_(v > 1, [&] {
    kb.assign(v, v / 2);
    kb.assign(steps, steps + 1);
  });
  kb.store(out, Val(0), steps);
  std::vector<uint32_t> result(1, 0);
  Interpreter interp;
  ASSERT_TRUE(interp.run(kb.build(), {KernelArg::buffer(&result)}, NDRange::linear(1, 1)).is_ok());
  EXPECT_EQ(result[0], 6u);  // 100 -> 50 -> 25 -> 12 -> 6 -> 3 -> 1
}

TEST(InterpTest, AtomicsAreSequentiallyConsistentPerItemOrder) {
  KernelBuilder kb("atomic_order");
  Buf counter = kb.buf_i32("counter"), order = kb.buf_i32("order");
  Val ticket = kb.atomic_ret(AtomicOp::kAdd, counter, Val(0), Val(1));
  kb.store(order, kb.global_id(0), ticket);
  std::vector<uint32_t> counter_data(1, 0), order_data(8, 0);
  Interpreter interp;
  ASSERT_TRUE(interp
                  .run(kb.build(), {KernelArg::buffer(&counter_data), KernelArg::buffer(&order_data)},
                       NDRange::linear(8, 8))
                  .is_ok());
  EXPECT_EQ(counter_data[0], 8u);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(order_data[i], i);  // item order
}

TEST(InterpTest, AtomicCmpxchg) {
  KernelBuilder kb("cas");
  Buf slot = kb.buf_i32("slot");
  auto stmt = std::make_shared<Stmt>();
  stmt->kind = StmtKind::kAtomic;
  stmt->atomic = AtomicOp::kCmpxchg;
  stmt->buffer = 0;
  stmt->a = make_ci32(0);
  stmt->b = make_ci32(42);  // desired
  stmt->c = make_ci32(7);   // expected
  Kernel kernel = kb.build();
  kernel.body.push_back(stmt);
  std::vector<uint32_t> data = {7};
  Interpreter interp;
  ASSERT_TRUE(interp.run(kernel, {KernelArg::buffer(&data)}, NDRange::linear(1, 1)).is_ok());
  EXPECT_EQ(data[0], 42u);
  data[0] = 9;  // expected mismatch: unchanged
  ASSERT_TRUE(interp.run(kernel, {KernelArg::buffer(&data)}, NDRange::linear(1, 1)).is_ok());
  EXPECT_EQ(data[0], 9u);
}

TEST(InterpTest, PrintfFormatting) {
  KernelBuilder kb("printer");
  kb.print("i=%d u=%u x=%x f=%f pct=%% end\n", {Val(-3), Val(7), Val(255), Val(1.5f)});
  std::vector<std::string> lines;
  InterpOptions options;
  options.print_sink = [&](const std::string& line) { lines.push_back(line); };
  Interpreter interp(options);
  ASSERT_TRUE(interp.run(kb.build(), {}, NDRange::linear(1, 1)).is_ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "i=-3 u=7 x=ff f=1.500000 pct=% end");
}

TEST(InterpTest, LocalMemoryIsPerGroup) {
  // Each group writes its group id into local memory; a stale value from a
  // previous group would corrupt the output.
  KernelBuilder kb("pergroup");
  Buf out = kb.buf_i32("out");
  Buf tile = kb.local_i32("tile", 4);
  Val lid = kb.local_id(0);
  kb.if_(lid == 0, [&] { kb.store(tile, Val(0), kb.group_id(0) + 100); });
  kb.barrier();
  kb.store(out, kb.global_id(0), kb.load(tile, Val(0)));
  std::vector<uint32_t> result(16, 0);
  Interpreter interp;
  ASSERT_TRUE(interp.run(kb.build(), {KernelArg::buffer(&result)}, NDRange::linear(16, 4)).is_ok());
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(result[i], 100 + i / 4) << i;
}

TEST(InterpTest, InstrumentationCountsDynamicAccesses) {
  KernelBuilder kb("instr");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  Val acc = kb.let_("acc", Val(0.0f));
  kb.for_("i", Val(0), Val(4), [&](Val i) { kb.assign(acc, acc + kb.load(a, gid + i)); });
  kb.store(out, gid, acc);
  uint64_t loads = 0, stores = 0;
  InterpOptions options;
  options.on_load = [&](const Expr*) { ++loads; };
  options.on_store = [&](const Stmt*) { ++stores; };
  Interpreter interp(options);
  std::vector<uint32_t> data(16, f2u(1.0f)), result(8, 0);
  ASSERT_TRUE(interp
                  .run(kb.build(), {KernelArg::buffer(&data), KernelArg::buffer(&result)},
                       NDRange::linear(8, 8))
                  .is_ok());
  EXPECT_EQ(loads, 8u * 4u);
  EXPECT_EQ(stores, 8u);
}

TEST(InterpTest, ArgumentValidation) {
  KernelBuilder kb("args");
  kb.buf_i32("buf");
  kb.param_i32("n");
  Kernel kernel = kb.build();
  Interpreter interp;
  std::vector<uint32_t> data(4);
  // Wrong count.
  EXPECT_FALSE(interp.run(kernel, {KernelArg::buffer(&data)}, NDRange::linear(1, 1)).is_ok());
  // Scalar passed for buffer.
  EXPECT_FALSE(interp
                   .run(kernel, {KernelArg::scalar_i32(1), KernelArg::scalar_i32(1)},
                        NDRange::linear(1, 1))
                   .is_ok());
  // Indivisible NDRange.
  NDRange bad = NDRange::linear(10, 4);
  EXPECT_FALSE(
      interp.run(kernel, {KernelArg::buffer(&data), KernelArg::scalar_i32(1)}, bad).is_ok());
}

TEST(InterpTest, SelectEvaluatesLazilyPerItem) {
  KernelBuilder kb("sel");
  Buf a = kb.buf_i32("a"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  // Guarded gather: index clamped by select; both arms valid here, values
  // must pick per item.
  kb.store(out, gid, vselect(gid < 2, kb.load(a, gid), Val(-1)));
  std::vector<uint32_t> data = {11, 22};
  std::vector<uint32_t> result(4, 0);
  Interpreter interp;
  ASSERT_TRUE(interp
                  .run(kb.build(), {KernelArg::buffer(&data), KernelArg::buffer(&result)},
                       NDRange::linear(4, 4))
                  .is_ok());
  EXPECT_EQ(result, (std::vector<uint32_t>{11, 22, 0xFFFFFFFFu, 0xFFFFFFFFu}));
}

TEST(InterpTest, IntegerDivisionMatchesRiscv) {
  KernelBuilder kb("divs");
  Buf out = kb.buf_i32("out");
  kb.store(out, Val(0), Val(7) / Val(0));                  // -1
  kb.store(out, Val(1), Val(7) % Val(0));                  // 7
  kb.store(out, Val(2), Val(-2147483647 - 1) / Val(-1));   // INT_MIN
  kb.store(out, Val(3), Val(-2147483647 - 1) % Val(-1));   // 0
  std::vector<uint32_t> result(4, 9);
  Interpreter interp;
  ASSERT_TRUE(interp.run(kb.build(), {KernelArg::buffer(&result)}, NDRange::linear(1, 1)).is_ok());
  EXPECT_EQ(static_cast<int32_t>(result[0]), -1);
  EXPECT_EQ(static_cast<int32_t>(result[1]), 7);
  EXPECT_EQ(result[2], 0x80000000u);
  EXPECT_EQ(result[3], 0u);
}

}  // namespace
}  // namespace fgpu::kir
