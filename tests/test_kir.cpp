// KIR tests: builder/printer, verifier diagnostics, constant folding,
// the O1 (CSE) / O2 (pipelined-load) passes, builtin expansion, divergence
// analysis, structural helpers, and kernel cloning.
#include <gtest/gtest.h>

#include <functional>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "kir/build.hpp"
#include "kir/interp.hpp"
#include "kir/passes.hpp"

namespace fgpu::kir {
namespace {

TEST(KirBuilderTest, PrinterProducesOpenClLikeSource) {
  KernelBuilder kb("axpb");
  Buf x = kb.buf_f32("x"), y = kb.buf_f32("y");
  Val a = kb.param_f32("a");
  Val gid = kb.global_id(0);
  kb.store(y, gid, a * kb.load(x, gid) + 1.0f);
  const std::string source = kb.build().to_string();
  EXPECT_NE(source.find("__kernel void axpb"), std::string::npos);
  EXPECT_NE(source.find("__global float* x"), std::string::npos);
  EXPECT_NE(source.find("get_global_id(0)"), std::string::npos);
  EXPECT_NE(source.find("y["), std::string::npos);
}

TEST(KirBuilderTest, FreshNamesNeverCollide) {
  KernelBuilder kb("k");
  Val a = kb.let_("v", Val(1));
  Val b = kb.let_("v", Val(2));
  EXPECT_NE(a.expr()->var, b.expr()->var);
}

TEST(KirBuilderTest, MixedTypePromotion) {
  KernelBuilder kb("k");
  Val f = kb.param_f32("f");
  Val combined = f + 1;  // int constant adapts to float
  EXPECT_EQ(combined.type(), Scalar::kF32);
  Val cmp = f < 2;
  EXPECT_EQ(cmp.type(), Scalar::kI32);
}

TEST(KirVerifierTest, AcceptsWellFormedKernel) {
  KernelBuilder kb("ok");
  Buf buf = kb.buf_i32("buf");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(buf, gid));
  kb.if_(v > 0, [&] { kb.store(buf, gid, v - 1); });
  EXPECT_TRUE(verify(kb.build()).is_ok());
}

TEST(KirVerifierTest, RejectsUndefinedVariable) {
  Kernel kernel;
  kernel.name = "bad";
  kernel.params.push_back(Param{"out", true, Scalar::kI32});
  auto store = std::make_shared<Stmt>();
  store->kind = StmtKind::kStore;
  store->buffer = 0;
  store->a = make_ci32(0);
  store->b = make_var("ghost", Scalar::kI32);
  kernel.body.push_back(store);
  auto status = verify(kernel);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("ghost"), std::string::npos);
}

TEST(KirVerifierTest, RejectsStoreToScalarParam) {
  Kernel kernel;
  kernel.name = "bad";
  kernel.params.push_back(Param{"n", false, Scalar::kI32});
  auto store = std::make_shared<Stmt>();
  store->kind = StmtKind::kStore;
  store->buffer = 0;
  store->a = make_ci32(0);
  store->b = make_ci32(1);
  kernel.body.push_back(store);
  EXPECT_FALSE(verify(kernel).is_ok());
}

TEST(KirVerifierTest, RejectsLoopVariableMutation) {
  Kernel kernel;
  kernel.name = "bad";
  auto loop = std::make_shared<Stmt>();
  loop->kind = StmtKind::kFor;
  loop->var = "i";
  loop->a = make_ci32(0);
  loop->b = make_ci32(4);
  loop->c = make_ci32(1);
  auto assign = std::make_shared<Stmt>();
  assign->kind = StmtKind::kAssign;
  assign->var = "i";
  assign->a = make_ci32(0);
  loop->body.push_back(assign);
  kernel.body.push_back(loop);
  EXPECT_FALSE(verify(kernel).is_ok());
}

TEST(KirVerifierTest, RejectsDuplicateKernelNames) {
  Module module;
  KernelBuilder a("same"), b("same");
  module.kernels.push_back(a.build());
  module.kernels.push_back(b.build());
  EXPECT_FALSE(verify(module).is_ok());
}

TEST(KirConstFoldTest, FoldsArithmetic) {
  KernelBuilder kb("k");
  Buf out = kb.buf_i32("out");
  kb.store(out, Val(0), Val(2) + Val(3) * Val(4));
  Kernel kernel = kb.build();
  EXPECT_GT(const_fold(kernel), 0);
  EXPECT_EQ(kernel.body[0]->b->kind, ExprKind::kConstInt);
  EXPECT_EQ(kernel.body[0]->b->ival, 14);
}

TEST(KirConstFoldTest, FoldsIdentities) {
  KernelBuilder kb("k");
  Buf out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  kb.store(out, gid + 0, (gid * 1) + (gid * 0));
  Kernel kernel = kb.build();
  const_fold(kernel);
  // gid + 0 -> gid; gid*1 + gid*0 -> gid.
  EXPECT_EQ(kernel.body[0]->a->kind, ExprKind::kSpecial);
  EXPECT_EQ(kernel.body[0]->b->kind, ExprKind::kSpecial);
}

TEST(KirConstFoldTest, DoesNotFoldDivisionByZero) {
  KernelBuilder kb("k");
  Buf out = kb.buf_i32("out");
  kb.store(out, Val(0), Val(5) / Val(0));
  Kernel kernel = kb.build();
  const_fold(kernel);
  EXPECT_EQ(kernel.body[0]->b->kind, ExprKind::kBinary);  // left for runtime semantics
}

TEST(KirCseTest, HoistsRepeatedLoads) {
  KernelBuilder kb("k");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  kb.store(out, gid * 2, kb.load(a, gid) * kb.load(a, gid));
  kb.store(out, gid * 2 + 1, kb.load(a, gid) + 1.0f);
  Kernel kernel = kb.build();
  const auto before = kernel.to_string();
  EXPECT_GE(cse_variable_reuse(kernel), 1);
  EXPECT_TRUE(verify(kernel).is_ok());
  // Only one load of a[gid] remains.
  int loads = 0;
  std::function<void(const ExprPtr&)> count = [&](const ExprPtr& e) {
    if (e->kind == ExprKind::kLoad) ++loads;
    for (const auto& arg : e->args) count(arg);
  };
  for (const auto& s : kernel.body) {
    if (s->a) count(s->a);
    if (s->b) count(s->b);
  }
  EXPECT_EQ(loads, 1) << "before:\n" << before << "after:\n" << kernel.to_string();
}

TEST(KirCseTest, RefusesToReuseAcrossInterveningStore) {
  // out[0] is read, then written, then read again: the second read must NOT
  // be replaced by the first value.
  KernelBuilder kb("k");
  Buf out = kb.buf_i32("out");
  Val first = kb.let_("first", kb.load(out, Val(0)) + 5);
  kb.store(out, Val(0), first);
  Val second = kb.let_("second", kb.load(out, Val(0)) + 5);
  kb.store(out, Val(1), second);
  Kernel kernel = kb.build();
  cse_variable_reuse(kernel);
  EXPECT_TRUE(verify(kernel).is_ok());
  // Semantics preserved: interpret and check.
  std::vector<uint32_t> data = {10, 0};
  Interpreter interp;
  ASSERT_TRUE(interp.run(kernel, {KernelArg::buffer(&data)}, NDRange::linear(1, 1)).is_ok());
  EXPECT_EQ(data[0], 15u);
  EXPECT_EQ(data[1], 20u);
}

TEST(KirCseTest, SemanticsPreservedOnListingOneShape) {
  // The paper's Listing 1 -> Listing 2 transformation must not change
  // results (w is both read and written).
  KernelBuilder kb("bpnn");
  Buf delta = kb.buf_f32("delta"), ly = kb.buf_f32("ly"), w = kb.buf_f32("w"),
      oldw = kb.buf_f32("oldw");
  Val gid = kb.global_id(0);
  kb.store(w, gid,
           kb.load(w, gid) + (0.3f * kb.load(delta, gid) * kb.load(ly, gid)) +
               (0.3f * kb.load(oldw, gid)));
  kb.store(oldw, gid,
           (0.3f * kb.load(delta, gid) * kb.load(ly, gid)) + (0.3f * kb.load(oldw, gid)));
  Kernel original = kb.build();
  Kernel optimized = clone_kernel(original);
  EXPECT_GE(cse_variable_reuse(optimized), 1);

  const uint32_t n = 16;
  std::vector<uint32_t> d(n), l(n), w0(n), ow0(n);
  Rng rng(5);
  for (uint32_t i = 0; i < n; ++i) {
    d[i] = f2u(rng.next_float(-1, 1));
    l[i] = f2u(rng.next_float(-1, 1));
    w0[i] = f2u(rng.next_float(-1, 1));
    ow0[i] = f2u(rng.next_float(-1, 1));
  }
  auto run = [&](const Kernel& kernel) {
    std::vector<uint32_t> dd = d, ll = l, ww = w0, oo = ow0;
    Interpreter interp;
    EXPECT_TRUE(interp
                    .run(kernel,
                         {KernelArg::buffer(&dd), KernelArg::buffer(&ll), KernelArg::buffer(&ww),
                          KernelArg::buffer(&oo)},
                         NDRange::linear(n, 8))
                    .is_ok());
    return std::pair{ww, oo};
  };
  EXPECT_EQ(run(original), run(optimized));
}

TEST(KirPipelinedTest, MarksAllGlobalLoadsOnly) {
  KernelBuilder kb("k");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Buf tile = kb.local_f32("tile", 8);
  Val gid = kb.global_id(0);
  kb.store(tile, gid & 7, kb.load(a, gid));
  kb.store(out, gid, kb.load(tile, gid & 7) + kb.load(a, gid + 1));
  Kernel kernel = kb.build();
  EXPECT_EQ(mark_pipelined_loads(kernel), 2);  // both global loads, not the local one
  EXPECT_EQ(mark_pipelined_loads(kernel), 0);  // idempotent
}

TEST(KirPipelinedTest, LetsOnlyVariant) {
  KernelBuilder kb("k");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  Val hoisted = kb.let_("hoisted", kb.load(a, gid));
  kb.store(out, gid, hoisted + kb.load(a, gid + 1));
  Kernel kernel = kb.build();
  EXPECT_EQ(mark_pipelined_loads_in_lets(kernel), 1);  // only the let initializer
}

TEST(KirBuiltinExpansionTest, RemovesAllSoftwareBuiltins) {
  KernelBuilder kb("k");
  Buf out = kb.buf_f32("out");
  Val x = kb.param_f32("x");
  kb.store(out, Val(0), vexp(x) + vlog(x) + vfloor(x) + vrsqrt(x) + vsqrt(x));
  Kernel kernel = kb.build();
  EXPECT_EQ(expand_builtins(kernel), 4);  // sqrt stays native
  // No exp/log/floor/rsqrt calls remain.
  std::function<bool(const ExprPtr&)> has_soft_call = [&](const ExprPtr& e) {
    if (e->kind == ExprKind::kCall && e->call != Builtin::kSqrt) return true;
    for (const auto& arg : e->args) {
      if (has_soft_call(arg)) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_soft_call(kernel.body[0]->b));
}

TEST(KirDivergenceTest, ClassifiesControlFlow) {
  KernelBuilder kb("k");
  Buf data = kb.buf_i32("data");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(n > 4, [&] {});                              // uniform (param only)
  kb.if_(gid > 4, [&] {});                            // divergent (global id)
  kb.for_("i", Val(0), n, [&](Val) {});               // uniform bounds
  kb.for_("j", Val(0), kb.load(data, gid), [&](Val) {});  // divergent bounds
  Kernel kernel = kb.build();
  analyze_divergence(kernel, /*group_id_uniform=*/false);
  EXPECT_FALSE(kernel.body[0]->divergent);
  EXPECT_TRUE(kernel.body[1]->divergent);
  EXPECT_FALSE(kernel.body[2]->divergent);
  EXPECT_TRUE(kernel.body[3]->divergent);
}

TEST(KirDivergenceTest, UniformLoadIsUniform) {
  KernelBuilder kb("k");
  Buf data = kb.buf_i32("data");
  Val v = kb.let_("v", kb.load(data, Val(0)));  // uniform index -> uniform value
  kb.if_(v > 0, [&] {});
  Kernel kernel = kb.build();
  analyze_divergence(kernel, false);
  EXPECT_FALSE(kernel.body[1]->divergent);
}

TEST(KirDivergenceTest, DivergenceFlowsThroughAssignmentsInLoops) {
  KernelBuilder kb("k");
  Val gid = kb.global_id(0);
  Val acc = kb.let_("acc", Val(0));  // starts uniform
  kb.for_("i", Val(0), Val(4), [&](Val) {
    kb.assign(acc, acc + gid);  // becomes divergent inside the loop
  });
  kb.if_(acc > 0, [&] {});
  Kernel kernel = kb.build();
  analyze_divergence(kernel, false);
  EXPECT_TRUE(kernel.body[2]->divergent);  // fixpoint propagated
}

TEST(KirDivergenceTest, GroupIdUniformityDependsOnDispatch) {
  for (const bool group_uniform : {true, false}) {
    KernelBuilder kb("k");
    Val grp = kb.group_id(0);
    kb.if_(grp > 0, [&] {});
    Kernel kernel = kb.build();
    analyze_divergence(kernel, group_uniform);
    EXPECT_EQ(kernel.body[0]->divergent, !group_uniform);
  }
}

TEST(KirStructuralTest, ExprEqualityAndHashing) {
  KernelBuilder kb("k");
  Val gid = kb.global_id(0);
  const ExprPtr a = (gid * 4 + 1).expr();
  const ExprPtr b = (kb.global_id(0) * 4 + 1).expr();
  const ExprPtr c = (gid * 4 + 2).expr();
  EXPECT_TRUE(expr_equal(a, b));
  EXPECT_FALSE(expr_equal(a, c));
  EXPECT_EQ(expr_hash(a), expr_hash(b));
  EXPECT_EQ(expr_size(a), 5u);
}

TEST(KirStructuralTest, PurityAndBufferReads) {
  KernelBuilder kb("k");
  Buf buf = kb.buf_i32("buf");
  Val gid = kb.global_id(0);
  const ExprPtr pure = (gid + 1).expr();
  const ExprPtr loady = (kb.load(buf, gid) + 1).expr();
  EXPECT_TRUE(expr_is_pure(pure));
  EXPECT_FALSE(expr_is_pure(loady));
  EXPECT_TRUE(expr_reads_buffer(loady, 0, false));
  EXPECT_FALSE(expr_reads_buffer(loady, 1, false));
  EXPECT_FALSE(expr_reads_buffer(loady, 0, true));
}

TEST(KirCloneTest, CloneIsDeep) {
  KernelBuilder kb("k");
  Buf out = kb.buf_i32("out");
  kb.if_(kb.global_id(0) > 0, [&] { kb.store(out, Val(0), Val(1)); });
  Kernel original = kb.build();
  Kernel copy = clone_kernel(original);
  copy.body[0]->divergent = true;
  original.body[0]->divergent = false;
  EXPECT_TRUE(copy.body[0]->divergent);
  EXPECT_FALSE(original.body[0]->divergent);
  EXPECT_NE(copy.body[0].get(), original.body[0].get());
  EXPECT_NE(copy.body[0]->body[0].get(), original.body[0]->body[0].get());
}

TEST(KirKernelTest, FeatureQueries) {
  KernelBuilder kb("k");
  Buf bins = kb.buf_i32("bins");
  kb.barrier();
  kb.atomic_add(bins, Val(0), Val(1));
  kb.print("x\n", {});
  Kernel kernel = kb.build();
  EXPECT_TRUE(kernel.has_barrier());
  EXPECT_TRUE(kernel.has_atomic());
  EXPECT_TRUE(kernel.has_print());
  KernelBuilder plain("p");
  Kernel plain_kernel = plain.build();
  EXPECT_FALSE(plain_kernel.has_barrier());
  EXPECT_FALSE(plain_kernel.has_atomic());
  EXPECT_FALSE(plain_kernel.has_print());
}

TEST(KirNdrangeTest, Geometry) {
  const NDRange r = NDRange::grid2d(64, 32, 8, 4);
  EXPECT_EQ(r.global_items(), 2048u);
  EXPECT_EQ(r.local_items(), 32u);
  EXPECT_EQ(r.num_groups(0), 8u);
  EXPECT_EQ(r.num_groups(1), 8u);
  EXPECT_EQ(r.total_groups(), 64u);
}

}  // namespace
}  // namespace fgpu::kir
