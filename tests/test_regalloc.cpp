// Register-allocator tests: live-interval computation (including the
// loop-extension rule), allocation under pressure, spill decisions, and the
// area/vortex model sanity checks that share this file.
#include <gtest/gtest.h>

#include "codegen/regalloc.hpp"
#include "vortex/area.hpp"

namespace fgpu::codegen {
namespace {

using arch::Op;

MInstr alu(int rd, int rs1, int rs2) {
  MInstr m;
  m.op = Op::kAdd;
  m.rd = rd;
  m.rs1 = rs1;
  m.rs2 = rs2;
  return m;
}

MInstr fpu(int rd, int rs1, int rs2) {
  MInstr m;
  m.op = Op::kFaddS;
  m.rd = rd;
  m.rs1 = rs1;
  m.rs2 = rs2;
  return m;
}

TEST(RegAllocTest, SimpleIntervals) {
  MFunction fn;
  const int a = fn.new_vreg(), b = fn.new_vreg(), c = fn.new_vreg();
  fn.code.push_back(alu(a, 0, 0));  // 0: def a
  fn.code.push_back(alu(b, a, 0));  // 1: def b, use a
  fn.code.push_back(alu(c, b, a));  // 2: def c, last use of a and b
  auto intervals = compute_intervals(fn);
  ASSERT_EQ(intervals.size(), 3u);
  for (const auto& interval : intervals) {
    if (interval.vreg == a) {
      EXPECT_EQ(interval.start, 0);
      EXPECT_EQ(interval.end, 2);
    }
    if (interval.vreg == c) {
      EXPECT_EQ(interval.start, 2);
      EXPECT_EQ(interval.end, 2);
    }
  }
}

TEST(RegAllocTest, LoopExtendsPreLoopValues) {
  MFunction fn;
  const int pre = fn.new_vreg();   // defined before the loop, used inside
  const int body = fn.new_vreg();  // defined+used strictly inside
  const int top = fn.make_label();
  fn.code.push_back(alu(pre, 0, 0));    // 0
  fn.label(top);                        // 1
  fn.code.push_back(alu(body, pre, 0)); // 2
  fn.code.push_back(alu(body, body, body));  // 3 (last textual use of both)
  MInstr back;
  back.op = Op::kBne;
  back.rs1 = 0;
  back.rs2 = 0;
  back.target = top;
  fn.code.push_back(back);  // 4: back edge
  auto intervals = compute_intervals(fn);
  for (const auto& interval : intervals) {
    if (interval.vreg == pre) {
      EXPECT_EQ(interval.end, 4) << "pre-loop value must live across the back edge";
    }
    if (interval.vreg == body) {
      EXPECT_EQ(interval.end, 3) << "in-body temporary must NOT be extended";
    }
  }
}

TEST(RegAllocTest, NoSpillWhenRegistersSuffice) {
  MFunction fn;
  std::vector<int> regs;
  for (int i = 0; i < 10; ++i) {
    regs.push_back(fn.new_vreg());
    fn.code.push_back(alu(regs.back(), 0, 0));
  }
  for (int i = 0; i < 10; ++i) fn.code.push_back(alu(0, regs[static_cast<size_t>(i)], 0));
  auto alloc = allocate_registers(fn);
  EXPECT_EQ(alloc.num_spill_slots, 0);
  EXPECT_EQ(alloc.assignment.size(), 10u);
}

TEST(RegAllocTest, SpillsUnderPressure) {
  RegAllocConfig config;
  config.int_regs = {5, 6, 7};  // only three registers
  MFunction fn;
  std::vector<int> regs;
  for (int i = 0; i < 6; ++i) {
    regs.push_back(fn.new_vreg());
    fn.code.push_back(alu(regs.back(), 0, 0));
  }
  // All six live simultaneously at the end.
  for (int i = 0; i < 6; ++i) fn.code.push_back(alu(0, regs[static_cast<size_t>(i)], 0));
  auto alloc = allocate_registers(fn, config);
  EXPECT_EQ(alloc.assignment.size() + alloc.spill_slot.size(), 6u);
  EXPECT_EQ(alloc.num_spill_slots, 3);
  // Assigned registers come from the pool.
  for (const auto& [vreg, phys] : alloc.assignment) {
    (void)vreg;
    EXPECT_TRUE(phys == 5 || phys == 6 || phys == 7);
  }
}

TEST(RegAllocTest, NoTwoLiveVregsShareARegister) {
  RegAllocConfig config;
  config.int_regs = {5, 6, 7, 8};
  MFunction fn;
  // Staggered lifetimes: i defined at i, dies at i+3.
  std::vector<int> regs;
  for (int i = 0; i < 12; ++i) {
    const int r = fn.new_vreg();
    regs.push_back(r);
    fn.code.push_back(alu(r, i >= 3 ? regs[static_cast<size_t>(i - 3)] : 0, 0));
  }
  auto alloc = allocate_registers(fn, config);
  auto intervals = compute_intervals(fn);
  for (size_t i = 0; i < intervals.size(); ++i) {
    for (size_t j = i + 1; j < intervals.size(); ++j) {
      const auto& a = intervals[i];
      const auto& b = intervals[j];
      if (!alloc.assignment.contains(a.vreg) || !alloc.assignment.contains(b.vreg)) continue;
      const bool overlap = a.start <= b.end && b.start <= a.end;
      if (overlap) {
        EXPECT_NE(alloc.assignment.at(a.vreg), alloc.assignment.at(b.vreg))
            << "vregs " << a.vreg << " and " << b.vreg << " overlap";
      }
    }
  }
}

TEST(RegAllocTest, DisjointSpilledRangesShareASlot) {
  RegAllocConfig config;
  config.int_regs = {5, 6};  // two registers force a spill in each cluster
  MFunction fn;
  // Two temporally disjoint pressure clusters: three values live at once in
  // each, so each cluster spills exactly one value — and because the first
  // cluster's slot lifetime has ended by the time the second cluster needs
  // one, lifetime-based slot assignment must reuse it.
  for (int cluster = 0; cluster < 2; ++cluster) {
    std::vector<int> regs;
    for (int i = 0; i < 3; ++i) {
      regs.push_back(fn.new_vreg());
      fn.code.push_back(alu(regs.back(), 0, 0));
    }
    for (int i = 0; i < 3; ++i) fn.code.push_back(alu(0, regs[static_cast<size_t>(i)], 0));
  }
  auto alloc = allocate_registers(fn, config);
  const size_t stack_served = alloc.spill_slot.size() + alloc.split.size();
  ASSERT_GE(stack_served, 2u) << "each cluster must push one value to the stack";
  EXPECT_EQ(alloc.num_spill_slots, 1) << "disjoint spill lifetimes must share one slot";
}

TEST(RegAllocTest, LongLivedSingleDefValueIsSplitNotSpilled) {
  RegAllocConfig config;
  config.int_regs = {5, 6};
  MFunction fn;
  // `early` is defined once, used immediately, then not touched while a
  // burst of short-lived values exhausts both registers, and finally read
  // again at the end. The allocator should split it — keep the register
  // through the early uses, serve the late use from the stack — rather than
  // reload it at every access like a whole-interval spill.
  const int early = fn.new_vreg();
  fn.code.push_back(alu(early, 0, 0));
  fn.code.push_back(alu(0, early, 0));
  for (int i = 0; i < 4; ++i) {
    const int a = fn.new_vreg(), b = fn.new_vreg();
    fn.code.push_back(alu(a, 0, 0));
    fn.code.push_back(alu(b, 0, 0));
    fn.code.push_back(alu(0, a, b));
  }
  fn.code.push_back(alu(0, early, 0));  // distant last use
  auto alloc = allocate_registers(fn, config);
  ASSERT_TRUE(alloc.is_split(early))
      << "single-def long-gap interval should split, not spill whole";
  const auto& split = alloc.split.at(early);
  EXPECT_TRUE(split.phys == 5 || split.phys == 6);
  EXPECT_GT(split.split_pos, 1) << "register must cover the early use";
  EXPECT_GE(split.slot, 0);
  EXPECT_FALSE(alloc.assignment.contains(early));
  EXPECT_FALSE(alloc.is_spilled(early));
  EXPECT_GE(alloc.num_spill_slots, 1);
}

TEST(RegAllocTest, FloatAndIntPoolsAreIndependent) {
  MFunction fn;
  const int iv = fn.new_vreg(), fv = fn.new_vreg();
  fn.code.push_back(alu(iv, 0, 0));
  fn.code.push_back(fpu(fv, fv, fv));
  fn.code.push_back(alu(0, iv, 0));
  auto alloc = allocate_registers(fn);
  ASSERT_TRUE(alloc.assignment.contains(iv));
  ASSERT_TRUE(alloc.assignment.contains(fv));
  EXPECT_LT(alloc.assignment.at(iv), kPhysFloatBase);
  EXPECT_GE(alloc.assignment.at(fv), kPhysFloatBase);
}

}  // namespace
}  // namespace fgpu::codegen

namespace fgpu::vortex {
namespace {

TEST(VortexAreaTest, MatchesPaperTableIvWithinTolerance) {
  struct Row {
    uint32_t c, w, t;
    fpga::AreaReport paper;
  };
  const Row rows[] = {
      {2, 4, 16, {332'143, 459'349, 1'275, 896}},
      {2, 8, 16, {336'568, 459'353, 1'299, 896}},
      {2, 16, 16, {341'134, 478'735, 1'299, 896}},
      {4, 8, 16, {617'748, 793'976, 2'235, 1'792}},
      {4, 16, 16, {626'688, 827'757, 2'235, 1'792}},
  };
  for (const auto& row : rows) {
    const auto area = estimate_area(Config::with(row.c, row.w, row.t));
    EXPECT_NEAR(static_cast<double>(area.aluts), static_cast<double>(row.paper.aluts),
                0.05 * static_cast<double>(row.paper.aluts));
    EXPECT_NEAR(static_cast<double>(area.ffs), static_cast<double>(row.paper.ffs),
                0.05 * static_cast<double>(row.paper.ffs));
    EXPECT_NEAR(static_cast<double>(area.brams), static_cast<double>(row.paper.brams),
                0.05 * static_cast<double>(row.paper.brams));
    EXPECT_EQ(area.dsps, row.paper.dsps);
  }
}

TEST(VortexAreaTest, MonotoneInEveryDimension) {
  const auto base = estimate_area(Config::with(2, 4, 8));
  EXPECT_GT(estimate_area(Config::with(4, 4, 8)).aluts, base.aluts);
  EXPECT_GT(estimate_area(Config::with(2, 8, 8)).aluts, base.aluts);
  EXPECT_GT(estimate_area(Config::with(2, 4, 16)).aluts, base.aluts);
  EXPECT_GT(estimate_area(Config::with(2, 4, 16)).dsps, base.dsps);
}

TEST(VortexAreaTest, BramSaturatesAtEightWarps) {
  // Visible in the paper's Table IV: W=8 and W=16 rows share BRAM counts.
  EXPECT_EQ(estimate_area(Config::with(2, 8, 16)).brams,
            estimate_area(Config::with(2, 16, 16)).brams);
  EXPECT_LT(estimate_area(Config::with(2, 4, 16)).brams,
            estimate_area(Config::with(2, 8, 16)).brams);
}

TEST(VortexAreaTest, FitsChecksBoard) {
  EXPECT_TRUE(fits(Config::with(4, 8, 16), fpga::stratix10_sx2800()));
  EXPECT_FALSE(fits(Config::with(64, 16, 32), fpga::stratix10_sx2800()));
}

}  // namespace
}  // namespace fgpu::vortex
