// Unit tests for the trace:: observability layer: JSON escaping and the
// streaming writer's determinism guarantees, sink recording semantics
// (time base, interning, args), the thread-local ScopedSink protocol the
// parallel runner relies on, and the Chrome trace_event exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace fgpu::trace {
namespace {

// JSON escaping --------------------------------------------------------------

TEST(JsonEscape, PassthroughPlainAscii) {
  EXPECT_EQ(json_escape("vecadd c4w8t8"), "vecadd c4w8t8");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, NamedControlEscapes) {
  EXPECT_EQ(json_escape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(JsonEscape, UnnamedControlCharsBecomeUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonEscape, Utf8BytesPassThrough) {
  // "µs" — multi-byte UTF-8 must not be mangled byte-by-byte.
  EXPECT_EQ(json_escape("\xc2\xb5s"), "\xc2\xb5s");
}

// JsonWriter -----------------------------------------------------------------

TEST(JsonWriter, CompactObjectAndArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("name", "b+tree");
  w.field("ok", true);
  w.field("cycles", static_cast<uint64_t>(31395));
  w.key("grid").begin_array().value(static_cast<uint32_t>(4)).value(static_cast<uint32_t>(8));
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"name":"b+tree","ok":true,"cycles":31395,"grid":[4,8]})");
}

TEST(JsonWriter, EscapesKeysAndValues) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().field("a\"b", "c\\d").end_object();
  EXPECT_EQ(os.str(), R"({"a\"b":"c\\d"})");
}

TEST(JsonWriter, FixedDoubleRecipe) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array().value(0.5).value(1.0).value(123.456).end_array();
  EXPECT_EQ(os.str(), "[0.5,1,123.456]");
}

TEST(JsonWriter, PrettyModeIndentsNestedContainers) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object().key("a").begin_object().field("b", static_cast<uint64_t>(1)).end_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": {\n    \"b\": 1\n  }\n}");
}

// Sink recording -------------------------------------------------------------

TEST(Sink, RecordsEventsWithTimeBase) {
  Sink sink;
  sink.complete("kernel_a", "kernel", 0, 0, 100);
  sink.set_time_base(101);
  sink.instant("barrier", "sync", 2, 7, {{"warps", 8}});
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.events()[0].phase, Phase::kComplete);
  EXPECT_EQ(sink.events()[0].ts, 0u);
  EXPECT_EQ(sink.events()[0].dur, 100u);
  // Launch-local cycle 7 of the second kernel lands at 101 + 7.
  EXPECT_EQ(sink.events()[1].ts, 108u);
  EXPECT_EQ(sink.events()[1].tid, 2u);
  ASSERT_EQ(sink.events()[1].nargs, 1u);
  EXPECT_STREQ(sink.events()[1].arg_keys[0], "warps");
  EXPECT_EQ(sink.events()[1].arg_vals[0], 8u);
}

TEST(Sink, CounterArgsCapAtMax) {
  Sink sink;
  sink.counter("stalls", 0, 0,
               {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}, {"f", 6}, {"overflow", 7}});
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.events()[0].nargs, Event::kMaxArgs);
}

TEST(Sink, InternReturnsStableDedupedPointers) {
  Sink sink;
  const char* a = sink.intern(std::string("l1d.c0"));
  const char* b = sink.intern("l1d.c0");
  const char* c = sink.intern("l1d.c1");
  EXPECT_EQ(a, b);  // same string -> same storage
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "l1d.c0");
  EXPECT_STREQ(c, "l1d.c1");
}

TEST(Sink, ThreadNamesAreOrderedByTid) {
  Sink sink;
  sink.set_thread_name(3, "core3");
  sink.set_thread_name(0, "core0");
  ASSERT_EQ(sink.thread_names().size(), 2u);
  EXPECT_EQ(sink.thread_names().begin()->first, 0u);
  EXPECT_EQ(sink.thread_names().begin()->second, "core0");
}

// Thread-local install protocol ----------------------------------------------

TEST(ScopedSink, InstallsAndRestores) {
  ASSERT_EQ(current(), nullptr);
  Sink outer, inner;
  {
    ScopedSink a(&outer);
    EXPECT_EQ(current(), &outer);
    {
      ScopedSink b(&inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(ScopedSink, MacrosRecordOnlyWhenInstalled) {
  FGPU_TRACE_INSTANT("orphan", "test", 0, 0);  // no sink: must be a no-op
  Sink sink;
  {
    ScopedSink scoped(&sink);
    if (kEnabled) EXPECT_TRUE(FGPU_TRACE_ACTIVE());
    FGPU_TRACE_INSTANT("hit", "test", 1, 5, {"n", 42});
    FGPU_TRACE_COUNTER("track", 0, 1024, {"v", 7});
  }
  EXPECT_FALSE(FGPU_TRACE_ACTIVE());
  if (kEnabled) {
    ASSERT_EQ(sink.size(), 2u);
    EXPECT_STREQ(sink.events()[0].name, "hit");
    EXPECT_EQ(sink.events()[1].phase, Phase::kCounter);
  } else {
    EXPECT_TRUE(sink.empty());
  }
}

// Chrome export --------------------------------------------------------------

TEST(ChromeTrace, EmitsMetadataAndEvents) {
  Sink sink;
  sink.set_thread_name(0, "core0");
  sink.complete(sink.intern("vecadd"), "kernel", 0, 0, 50, {{"instrs", 123}});
  sink.instant("warp_exit", "warp", 0, 9);

  std::ostringstream os;
  write_chrome_trace(os, sink, "bench \"q\"");
  const std::string out = os.str();

  // Structure: top-level object with a traceEvents array.
  EXPECT_EQ(out.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(out.find("\"traceEvents\":"), std::string::npos);
  // Process/thread naming metadata with the process name escaped.
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("bench \\\"q\\\""), std::string::npos);
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"core0\""), std::string::npos);
  // The complete event with phase/dur/args.
  EXPECT_NE(out.find("\"name\":\"vecadd\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(out.find("\"instrs\":123"), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'), std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['), std::count(out.begin(), out.end(), ']'));
  EXPECT_EQ(out.back(), '\n');
}

TEST(ChromeTrace, MergesSinksAsSeparateProcesses) {
  Sink a, b;
  a.instant("ea", "t", 0, 1);
  b.instant("eb", "t", 0, 2);
  std::ostringstream os;
  write_chrome_trace(os, {Process{1, "first", &a}, Process{2, "second", &b}});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(out.find("\"first\""), std::string::npos);
  EXPECT_NE(out.find("\"second\""), std::string::npos);
}

}  // namespace
}  // namespace fgpu::trace
