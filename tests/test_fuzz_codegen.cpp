// Randomized differential testing: generate random KIR kernels (arithmetic,
// divergent control flow, loops, memory traffic), run them through the
// reference interpreter and through codegen + the cycle-level simulator,
// and require bit-identical buffers. Also checks the blocked work
// distribution and the no-uniform-branch ablation against the default.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.hpp"
#include "kir/build.hpp"
#include "kir/interp.hpp"
#include "kir/passes.hpp"
#include "runtime/vortex_device.hpp"

namespace fgpu {
namespace {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

// Generates a random integer kernel reading `in`, writing `out` at gid.
kir::Kernel random_kernel(uint64_t seed) {
  Rng rng(seed);
  KernelBuilder kb("fuzz");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);

  std::vector<Val> pool = {gid, kb.load(in, gid), Val(static_cast<int32_t>(rng.next_range(-50, 50))),
                           n};

  std::function<Val(int)> expr = [&](int depth) -> Val {
    if (depth <= 0 || rng.next_below(3) == 0) {
      return pool[rng.next_below(static_cast<uint32_t>(pool.size()))];
    }
    const Val a = expr(depth - 1);
    const Val b = expr(depth - 1);
    switch (rng.next_below(12)) {
      case 0: return a + b;
      case 1: return a - b;
      case 2: return a * b;
      case 3: return a / (b | 1);     // avoid heavy div-by-zero paths but keep them legal
      case 4: return a % (b | 1);
      case 5: return a & b;
      case 6: return a | b;
      case 7: return a ^ b;
      case 8: return a << (b & 7);
      case 9: return a >> (b & 7);
      case 10: return vmin(a, b);
      default: return vmax(a, b);
    }
  };

  Val acc = kb.let_("acc", expr(3));
  const int statements = 2 + static_cast<int>(rng.next_below(4));
  for (int s = 0; s < statements; ++s) {
    switch (rng.next_below(4)) {
      case 0:  // divergent if/else
        kb.if_((expr(2) & 3) == static_cast<int32_t>(rng.next_below(4)),
               [&] { kb.assign(acc, acc + expr(2)); },
               [&] { kb.assign(acc, acc ^ expr(2)); });
        break;
      case 1: {  // data-dependent loop (bounded trip count)
        Val trips = kb.let_("trips" + std::to_string(s), expr(1) & 7);
        kb.for_("i" + std::to_string(s), Val(0), trips,
                [&](Val i) { kb.assign(acc, acc + i + (acc >> 3)); });
        break;
      }
      case 2:  // uniform if on a param
        kb.if_(n > static_cast<int32_t>(rng.next_below(64)),
               [&] { kb.assign(acc, acc * 3 + 1); });
        break;
      default:  // extra memory traffic
        kb.assign(acc, acc + kb.load(in, (expr(1) & 0x3F)));
        break;
    }
    pool.push_back(acc);
  }
  kb.store(out, gid, acc);
  return kb.build();
}

class FuzzCodegen : public ::testing::TestWithParam<int> {};

TEST_P(FuzzCodegen, SimulatorMatchesInterpreter) {
  const auto seed = static_cast<uint64_t>(GetParam());
  kir::Kernel kernel = random_kernel(seed);
  ASSERT_TRUE(kir::verify(kernel).is_ok()) << kernel.to_string();

  const uint32_t count = 64;
  Rng rng(seed ^ 0xF00D);
  std::vector<uint32_t> input(count);
  for (auto& v : input) v = rng.next_u32();

  // Interpreter reference.
  std::vector<uint32_t> ref_in = input, ref_out(count, 0);
  kir::Interpreter interp;
  ASSERT_TRUE(interp
                  .run(kernel,
                       {kir::KernelArg::buffer(&ref_in), kir::KernelArg::buffer(&ref_out),
                        kir::KernelArg::scalar_i32(static_cast<int32_t>(count))},
                       NDRange::linear(count, 32))
                  .is_ok())
      << kernel.to_string();

  // Every compilation variant must match the interpreter bit-for-bit — and
  // therefore each other. The opt-level sweep is the differential gate for
  // the whole -O pipeline: -O0 is the straight-lowering oracle, -O2 runs
  // every KIR pass, the peephole, and the spill-splitting allocator.
  struct Variant {
    const char* name;
    codegen::Options options;
  };
  std::vector<Variant> variants = {
      {"default", {}}, {"no-uniform-opt", {}}, {"blocked", {}},
      {"O0", {}},      {"O1", {}},             {"O2", {}},
      {"blocked-O0", {}}};
  variants[1].options.uniform_branch_opt = false;
  variants[2].options.distribution = codegen::WorkDistribution::kBlocked;
  variants[3].options.opt_level = 0;
  variants[4].options.opt_level = 1;
  variants[5].options.opt_level = 2;
  variants[6].options.distribution = codegen::WorkDistribution::kBlocked;
  variants[6].options.opt_level = 0;

  for (const auto& variant : variants) {
    vcl::VortexDevice device(vortex::Config::with(2, 4, 8), fpga::stratix10_sx2800(),
                             variant.options);
    kir::Module module;
    module.kernels.push_back(kernel);
    ASSERT_TRUE(device.build(module).is_ok()) << variant.name;
    auto in_buf = device.upload(input);
    auto out_buf = device.alloc(count * 4);
    std::vector<uint32_t> zero(count, 0);
    device.write(out_buf, zero.data(), count * 4, 0);
    auto stats = device.launch("fuzz", {in_buf, out_buf, static_cast<int32_t>(count)},
                               NDRange::linear(count, 32));
    ASSERT_TRUE(stats.is_ok()) << variant.name << ": " << stats.status().to_string();
    const auto got = device.download<uint32_t>(out_buf);
    for (uint32_t i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], ref_out[i]) << variant.name << " seed " << seed << " element " << i
                                    << "\n" << kernel.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCodegen, ::testing::Range(1, 25));

TEST(TraceHookTest, RecordsIssuedInstructions) {
  KernelBuilder kb("traced");
  Buf out = kb.buf_i32("out");
  kb.store(out, kb.global_id(0), kb.global_id(0) + 1);
  kir::Module module;
  module.kernels.push_back(kb.build());

  std::vector<vortex::TraceEvent> events;
  vortex::Config config = vortex::Config::with(1, 2, 4);
  config.trace = [&](const vortex::TraceEvent& event) { events.push_back(event); };
  vcl::VortexDevice device(config);
  ASSERT_TRUE(device.build(module).is_ok());
  auto buffer = device.alloc(8 * 4);
  auto stats = device.launch("traced", {buffer}, NDRange::linear(8, 8));
  ASSERT_TRUE(stats.is_ok());
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.size(), stats->perf.instrs);
  // The trace must contain the SIMT activation and retire instructions.
  bool saw_tmc = false, saw_wspawn = false;
  for (const auto& event : events) {
    if (event.instr.op == arch::Op::kTmc) saw_tmc = true;
    if (event.instr.op == arch::Op::kWspawn) saw_wspawn = true;
    EXPECT_LT(event.warp, 2u);
  }
  EXPECT_TRUE(saw_tmc);
  EXPECT_TRUE(saw_wspawn);
}

}  // namespace
}  // namespace fgpu
