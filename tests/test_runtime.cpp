// Runtime (vcl::) conformance tests: the OpenCL-like host API contract must
// behave identically across the two device backends — argument validation,
// buffer transfer semantics, build-failure reporting, console handling —
// and identical kernels must produce bit-identical results on both.
#include <gtest/gtest.h>

#include <memory>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "kir/build.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/vortex_device.hpp"

namespace fgpu::vcl {
namespace {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

kir::Module simple_module() {
  KernelBuilder kb("twice");
  Buf data = kb.buf_i32("data");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(gid < n, [&] { kb.store(data, gid, kb.load(data, gid) * 2); });
  kir::Module module;
  module.name = "conformance";
  module.kernels.push_back(kb.build());
  return module;
}

std::vector<std::unique_ptr<Device>> both_devices() {
  std::vector<std::unique_ptr<Device>> devices;
  devices.push_back(std::make_unique<VortexDevice>(vortex::Config::with(2, 4, 8)));
  devices.push_back(std::make_unique<HlsDevice>());
  return devices;
}

TEST(RuntimeConformance, BufferReadWriteWithOffsets) {
  for (auto& device : both_devices()) {
    Buffer buffer = device->alloc(64);
    std::vector<uint32_t> data = {1, 2, 3, 4};
    device->write(buffer, data.data(), 16, 0);
    device->write(buffer, data.data(), 16, 32);
    uint32_t probe = 0;
    device->read(buffer, &probe, 4, 36);
    EXPECT_EQ(probe, 2u) << device->name();
    device->read(buffer, &probe, 4, 0);
    EXPECT_EQ(probe, 1u) << device->name();
  }
}

TEST(RuntimeConformance, DistinctBuffersDoNotAlias) {
  for (auto& device : both_devices()) {
    Buffer a = device->alloc(16);
    Buffer b = device->alloc(16);
    const uint32_t va = 0x11111111, vb = 0x22222222;
    device->write(a, &va, 4, 0);
    device->write(b, &vb, 4, 0);
    uint32_t out = 0;
    device->read(a, &out, 4, 0);
    EXPECT_EQ(out, va) << device->name();
  }
}

TEST(RuntimeConformance, LaunchRejectsWrongArgumentCount) {
  for (auto& device : both_devices()) {
    ASSERT_TRUE(device->build(simple_module()).is_ok()) << device->name();
    Buffer buffer = device->alloc(64);
    auto result = device->launch("twice", {buffer}, NDRange::linear(16, 16));
    EXPECT_FALSE(result.is_ok()) << device->name();
  }
}

TEST(RuntimeConformance, LaunchRejectsUnknownKernel) {
  for (auto& device : both_devices()) {
    ASSERT_TRUE(device->build(simple_module()).is_ok());
    auto result = device->launch("nonexistent", {}, NDRange::linear(1, 1));
    EXPECT_FALSE(result.is_ok()) << device->name();
    EXPECT_EQ(result.status().kind(), ErrorKind::kNotFound) << device->name();
  }
}

TEST(RuntimeConformance, BuildInfoIsPerKernel) {
  kir::Module module = simple_module();
  KernelBuilder kb2("second");
  Buf out = kb2.buf_f32("out");
  kb2.store(out, kb2.global_id(0), Val(1.0f));
  module.kernels.push_back(kb2.build());
  for (auto& device : both_devices()) {
    ASSERT_TRUE(device->build(module).is_ok()) << device->name();
    EXPECT_EQ(device->build_info().size(), 2u) << device->name();
    EXPECT_NE(device->find_build_info("twice"), nullptr);
    EXPECT_NE(device->find_build_info("second"), nullptr);
    EXPECT_EQ(device->find_build_info("missing"), nullptr);
  }
}

TEST(RuntimeConformance, RebuildReplacesProgram) {
  for (auto& device : both_devices()) {
    ASSERT_TRUE(device->build(simple_module()).is_ok());
    KernelBuilder kb("other");
    Buf out = kb.buf_i32("out");
    kb.store(out, kb.global_id(0), Val(7));
    kir::Module module;
    module.kernels.push_back(kb.build());
    ASSERT_TRUE(device->build(module).is_ok());
    // Old kernel gone, new one present.
    Buffer buffer = device->alloc(16);
    EXPECT_FALSE(device->launch("twice", {buffer, 4}, NDRange::linear(4, 4)).is_ok());
    EXPECT_TRUE(device->launch("other", {buffer}, NDRange::linear(4, 4)).is_ok());
  }
}

TEST(RuntimeConformance, IdenticalResultsAcrossBackends) {
  // A kernel exercising divergence, loops and float math must agree
  // bit-for-bit between the soft GPU and the HLS executor.
  KernelBuilder kb("mixed");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(gid < n, [&] {
    Val x = kb.let_("x", kb.load(in, gid));
    Val acc = kb.let_("acc", Val(0.0f));
    kb.for_("i", Val(0), (gid & 3) + 1, [&](Val i) { kb.assign(acc, acc + x * to_f32(i + 1)); });
    kb.if_(x < 0.0f, [&] { kb.assign(acc, -acc); });
    kb.store(out, gid, acc + vsqrt(vabs(x)) + vexp(x * 0.01f));
  });
  kir::Module module;
  module.kernels.push_back(kb.build());

  const uint32_t count = 256;
  Rng rng(77);
  std::vector<uint32_t> input(count);
  for (auto& v : input) v = f2u(rng.next_float(-5.0f, 5.0f));

  std::vector<std::vector<uint32_t>> results;
  for (auto& device : both_devices()) {
    ASSERT_TRUE(device->build(module).is_ok()) << device->name();
    Buffer in_buf = device->upload(input);
    Buffer out_buf = device->alloc(count * 4);
    std::vector<uint32_t> zero(count, 0);
    device->write(out_buf, zero.data(), count * 4, 0);
    auto stats = device->launch("mixed", {in_buf, out_buf, static_cast<int32_t>(count)},
                                NDRange::linear(count, 64));
    ASSERT_TRUE(stats.is_ok()) << device->name() << ": " << stats.status().to_string();
    EXPECT_GT(stats->device_cycles, 0u);
    EXPECT_GT(stats->clock_mhz, 0.0);
    results.push_back(device->download<uint32_t>(out_buf));
  }
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], results[1]);
}

TEST(RuntimeConformance, ConsoleCapturesAndClears) {
  KernelBuilder kb("shout");
  kb.print("hello %d\n", {kb.global_id(0)});
  kir::Module module;
  module.kernels.push_back(kb.build());
  for (auto& device : both_devices()) {
    ASSERT_TRUE(device->build(module).is_ok());
    ASSERT_TRUE(device->launch("shout", {}, NDRange::linear(2, 2)).is_ok());
    EXPECT_EQ(device->console().size(), 2u) << device->name();
    device->clear_console();
    EXPECT_TRUE(device->console().empty()) << device->name();
  }
}

TEST(RuntimeConformance, VortexRejectsOversizedWorkGroup) {
  KernelBuilder kb("wg");
  Buf out = kb.buf_i32("out");
  kb.barrier();
  kb.store(out, kb.global_id(0), Val(1));
  kir::Module module;
  module.kernels.push_back(kb.build());
  VortexDevice device(vortex::Config::with(1, 2, 4));  // 8 lanes
  ASSERT_TRUE(device.build(module).is_ok());
  Buffer buffer = device.alloc(64 * 4);
  auto result = device.launch("wg", {buffer}, NDRange::linear(64, 16));  // group of 16 > 8 lanes
  EXPECT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("work-group"), std::string::npos);
}

TEST(RuntimeConformance, NdrangeDivisibilityEnforced) {
  VortexDevice device(vortex::Config::with(1, 2, 4));
  ASSERT_TRUE(device.build(simple_module()).is_ok());
  Buffer buffer = device.alloc(64);
  auto result = device.launch("twice", {buffer, 10}, NDRange::linear(10, 4));
  EXPECT_FALSE(result.is_ok());
}

TEST(RuntimeConformance, HlsTimingFieldsPopulated) {
  HlsDevice device;
  ASSERT_TRUE(device.build(simple_module()).is_ok());
  Buffer buffer = device.alloc(256 * 4);
  std::vector<uint32_t> data(256, 3);
  device.write(buffer, data.data(), 256 * 4, 0);
  auto stats = device.launch("twice", {buffer, 256}, NDRange::linear(256, 64));
  ASSERT_TRUE(stats.is_ok());
  EXPECT_GT(stats->pipeline_depth, 0u);
  EXPECT_GE(stats->initiation_interval, 1u);
  EXPECT_EQ(stats->clock_mhz, fpga::stratix10_mx2100().hls_kernel_clock_mhz);
}

TEST(RuntimeConformance, VortexPerfCountersPopulated) {
  VortexDevice device(vortex::Config::with(2, 4, 4));
  ASSERT_TRUE(device.build(simple_module()).is_ok());
  std::vector<uint32_t> data(256, 3);
  Buffer buffer = device.upload(data);
  auto stats = device.launch("twice", {buffer, 256}, NDRange::linear(256, 64));
  ASSERT_TRUE(stats.is_ok());
  EXPECT_GT(stats->perf.instrs, 0u);
  EXPECT_GT(stats->perf.loads, 0u);
  EXPECT_GT(stats->perf.stores, 0u);
  EXPECT_GT(stats->l1d.hits + stats->l1d.misses, 0u);
  EXPECT_GT(stats->dram_bytes, 0u);
  EXPECT_EQ(stats->perf.warps_spawned, 2u * 3u);  // 3 spawned per core
}

}  // namespace
}  // namespace fgpu::vcl
