// Simulator ISA-level tests: hand-written assembly kernels exercising the
// pipeline, SIMT divergence control (SPLIT/JOIN/PRED/TMC), warp spawning,
// barriers, memory and atomics.
#include <gtest/gtest.h>

#include "arch/isa.hpp"
#include "mem/memory.hpp"
#include "vasm/assembler.hpp"
#include "vortex/cluster.hpp"

namespace fgpu::vortex {
namespace {

constexpr uint32_t kOut = arch::kHeapBase;

struct SimResult {
  ClusterStats stats;
  mem::MainMemory mem;
};

// Assembles `source`, loads it, runs it on a cluster with the given config.
SimResult run_asm(const std::string& source, Config config = Config::with(1, 4, 8)) {
  auto prog = vasm::assemble(source);
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
  SimResult result;
  result.mem.write(prog->base, prog->words.data(), prog->size_bytes());
  Cluster cluster(config, result.mem);
  auto stats = cluster.run(prog->entry());
  EXPECT_TRUE(stats.is_ok()) << stats.status().to_string();
  if (stats.is_ok()) result.stats = *stats;
  return result;
}

TEST(SimIsaTest, StoreWord) {
  auto r = run_asm(R"(
    li t0, 0x20000000
    li t1, 42
    sw t1, 0(t0)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut), 42u);
  EXPECT_GT(r.stats.perf.cycles, 0u);
  EXPECT_EQ(r.stats.perf.instrs, 4u);  // lui, addi, sw, tmc
}

TEST(SimIsaTest, ArithmeticAndLoop) {
  // sum 1..10 = 55
  auto r = run_asm(R"(
    li t0, 10
    li t1, 0
  loop:
    add t1, t1, t0
    addi t0, t0, -1
    bne t0, zero, loop
    li t2, 0x20000000
    sw t1, 0(t2)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut), 55u);
}

TEST(SimIsaTest, MulDivRem) {
  auto r = run_asm(R"(
    li t0, 7
    li t1, -3
    mul t2, t0, t1        # -21
    div t3, t2, t0        # -3
    rem t4, t2, t1        # 0
    li t5, 0x20000000
    sw t2, 0(t5)
    sw t3, 4(t5)
    sw t4, 8(t5)
    tmc zero
  )");
  EXPECT_EQ(static_cast<int32_t>(r.mem.load32(kOut)), -21);
  EXPECT_EQ(static_cast<int32_t>(r.mem.load32(kOut + 4)), -3);
  EXPECT_EQ(static_cast<int32_t>(r.mem.load32(kOut + 8)), 0);
}

TEST(SimIsaTest, DivisionByZeroFollowsRiscvSemantics) {
  auto r = run_asm(R"(
    li t0, 9
    li t1, 0
    div t2, t0, t1        # -1
    rem t3, t0, t1        # 9
    divu t4, t0, t1       # 0xFFFFFFFF
    li t5, 0x20000000
    sw t2, 0(t5)
    sw t3, 4(t5)
    sw t4, 8(t5)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut), 0xFFFFFFFFu);
  EXPECT_EQ(r.mem.load32(kOut + 4), 9u);
  EXPECT_EQ(r.mem.load32(kOut + 8), 0xFFFFFFFFu);
}

TEST(SimIsaTest, FloatArithmetic) {
  auto r = run_asm(R"(
    li t0, 0x40490FDB      # pi as bits
    fmv.w.x f0, t0
    fadd.s f1, f0, f0      # 2pi
    fmul.s f2, f0, f0      # pi^2
    fsqrt.s f3, f2         # ~pi
    li t5, 0x20000000
    fsw f1, 0(t5)
    fsw f2, 4(t5)
    fsw f3, 8(t5)
    tmc zero
  )");
  const float pi = 3.14159265f;
  EXPECT_NEAR(u2f(r.mem.load32(kOut)), 2 * pi, 1e-5);
  EXPECT_NEAR(u2f(r.mem.load32(kOut + 4)), pi * pi, 1e-5);
  EXPECT_NEAR(u2f(r.mem.load32(kOut + 8)), pi, 1e-5);
}

TEST(SimIsaTest, TmcActivatesAllLanes) {
  // Each active lane stores its lane id.
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0        # lane id
    li t2, 0x20000000
    slli t3, t1, 2
    add t2, t2, t3
    sw t1, 0(t2)
    tmc zero
  )");
  for (uint32_t lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(r.mem.load32(kOut + lane * 4), lane) << "lane " << lane;
  }
}

TEST(SimIsaTest, SplitJoinDivergence) {
  // Odd lanes write 100, even lanes write 200; all reconverge and write 7.
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0
    andi t2, t1, 1
    split t2, even_path
    li t3, 100
    join merge
  even_path:
    li t3, 200
    join merge
  merge:
    li t4, 0x20000000
    slli t5, t1, 2
    add t4, t4, t5
    sw t3, 0(t4)
    li t6, 0x20000100
    add t6, t6, t5
    li t3, 7
    sw t3, 0(t6)
    tmc zero
  )");
  for (uint32_t lane = 0; lane < 8; ++lane) {
    const uint32_t expected = (lane % 2 == 1) ? 100u : 200u;
    EXPECT_EQ(r.mem.load32(kOut + lane * 4), expected) << "lane " << lane;
    EXPECT_EQ(r.mem.load32(kOut + 0x100 + lane * 4), 7u) << "lane " << lane;
  }
  EXPECT_GE(r.stats.perf.divergent_branches, 1u);
  EXPECT_GE(r.stats.perf.joins, 2u);
}

TEST(SimIsaTest, SplitUniformTakesOneJoin) {
  // All lanes satisfy the predicate: only the then-side join executes.
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    li t2, 1
    split t2, else_path
    li t3, 11
    join merge
  else_path:
    li t3, 22
    join merge
  merge:
    li t4, 0x20000000
    sw t3, 0(t4)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut), 11u);
  EXPECT_EQ(r.stats.perf.divergent_branches, 0u);
}

TEST(SimIsaTest, NestedDivergence) {
  // Outer split on lane<4, inner split on lane parity; every lane gets a
  // distinct value of (outer*10 + parity).
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0
    slti t2, t1, 4
    andi t3, t1, 1
    split t2, outer_else
    split t3, inner_else1
    li t4, 11
    join inner_merge1
  inner_else1:
    li t4, 10
    join inner_merge1
  inner_merge1:
    join outer_merge
  outer_else:
    split t3, inner_else2
    li t4, 21
    join inner_merge2
  inner_else2:
    li t4, 20
    join inner_merge2
  inner_merge2:
    join outer_merge
  outer_merge:
    li t5, 0x20000000
    slli t6, t1, 2
    add t5, t5, t6
    sw t4, 0(t5)
    tmc zero
  )");
  for (uint32_t lane = 0; lane < 8; ++lane) {
    const uint32_t expected = (lane < 4 ? 10u : 20u) + (lane % 2);
    EXPECT_EQ(r.mem.load32(kOut + lane * 4), expected) << "lane " << lane;
  }
}

TEST(SimIsaTest, PredLoop) {
  // Lane l iterates l times; acc[l] == l afterwards, and the thread mask is
  // restored after the loop so every lane stores.
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0
    mv t2, t1            # counter
    li t3, 0             # acc
    csrr s0, 0xCC3       # save mask
  loop:
    sltu t4, zero, t2
    pred t4, fixup
    addi t3, t3, 1
    addi t2, t2, -1
    j loop
  fixup:
    tmc s0
    li t5, 0x20000000
    slli t6, t1, 2
    add t5, t5, t6
    sw t3, 0(t5)
    tmc zero
  )");
  for (uint32_t lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(r.mem.load32(kOut + lane * 4), lane) << "lane " << lane;
  }
}

TEST(SimIsaTest, WspawnAndBarrier) {
  // Warp 0 spawns warp 1. Each warp stores warp_id+1 into its slot, hits a
  // barrier, then warp reads the other warp's slot.
  auto r = run_asm(R"(
    li t0, 2
    la t1, warp_entry
    wspawn t0, t1
  warp_entry:
    li t0, 255
    tmc t0
    csrr t1, 0xCC1        # warp id
    csrr t2, 0xCC0        # lane id
    # out[warp*8 + lane] = warp + 1
    li t3, 0x20000000
    slli t4, t1, 5
    add t3, t3, t4
    slli t5, t2, 2
    add t3, t3, t5
    addi t6, t1, 1
    sw t6, 0(t3)
    li a0, 0
    li a1, 2
    bar a0, a1
    # cross[warp*8+lane] = out[(1-warp)*8 + lane]
    li t3, 0x20000000
    li s0, 1
    sub s1, s0, t1        # other warp
    slli s1, s1, 5
    add t3, t3, s1
    slli t5, t2, 2
    add t3, t3, t5
    lw s2, 0(t3)
    li t3, 0x20000100
    slli t4, t1, 5
    add t3, t3, t4
    add t3, t3, t5
    sw s2, 0(t3)
    tmc zero
  )");
  for (uint32_t warp = 0; warp < 2; ++warp) {
    for (uint32_t lane = 0; lane < 8; ++lane) {
      EXPECT_EQ(r.mem.load32(kOut + warp * 32 + lane * 4), warp + 1);
      EXPECT_EQ(r.mem.load32(kOut + 0x100 + warp * 32 + lane * 4), (1 - warp) + 1);
    }
  }
  EXPECT_EQ(r.stats.perf.warps_spawned, 1u);
  EXPECT_EQ(r.stats.perf.barriers, 2u);
}

TEST(SimIsaTest, AtomicAddAcrossLanes) {
  // All 8 lanes amoadd 1 to the same counter.
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    li t1, 0x20000000
    li t2, 1
    amoadd.w t3, t2, (t1)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut), 8u);
  EXPECT_EQ(r.stats.perf.atomics, 1u);
}

TEST(SimIsaTest, AtomicMinMax) {
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0
    li t2, 0x20000000
    amomax.w t3, t1, (t2)
    li t2, 0x20000004
    li t4, 100
    sw t4, 0(t2)
    amomin.w t3, t1, (t2)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut), 7u);    // max lane id
  EXPECT_EQ(r.mem.load32(kOut + 4), 0u);  // min lane id
}

TEST(SimIsaTest, SharedLocalMemory) {
  // Lane l writes to local memory, reads neighbour's slot after all lanes
  // wrote (single warp: lockstep issue makes this safe).
  auto r = run_asm(R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0
    li t2, 0x70000000
    slli t3, t1, 2
    add t4, t2, t3
    addi t5, t1, 10
    sw t5, 0(t4)
    # read (lane+1)%8 slot
    addi t6, t1, 1
    andi t6, t6, 7
    slli t6, t6, 2
    add t6, t2, t6
    lw s0, 0(t6)
    li s1, 0x20000000
    add s1, s1, t3
    sw s0, 0(s1)
    tmc zero
  )");
  for (uint32_t lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(r.mem.load32(kOut + lane * 4), (lane + 1) % 8 + 10) << "lane " << lane;
  }
}

TEST(SimIsaTest, CsrMachineInfo) {
  auto r = run_asm(R"(
    csrr t0, 0xFC0       # num threads
    csrr t1, 0xFC1       # num warps
    csrr t2, 0xFC2       # num cores
    csrr t3, 0xCC2       # core id
    li t4, 0x20000000
    sw t0, 0(t4)
    sw t1, 4(t4)
    sw t2, 8(t4)
    sw t3, 12(t4)
    tmc zero
  )", Config::with(2, 4, 8));
  EXPECT_EQ(r.mem.load32(kOut), 8u);
  EXPECT_EQ(r.mem.load32(kOut + 4), 4u);
  EXPECT_EQ(r.mem.load32(kOut + 8), 2u);
}

TEST(SimIsaTest, MultiCoreBothRun) {
  // Every core's warp 0 stores to its own slot.
  auto r = run_asm(R"(
    csrr t0, 0xCC2
    li t1, 0x20000000
    slli t2, t0, 2
    add t1, t1, t2
    addi t3, t0, 1
    sw t3, 0(t1)
    tmc zero
  )", Config::with(4, 2, 4));
  for (uint32_t core = 0; core < 4; ++core) {
    EXPECT_EQ(r.mem.load32(kOut + core * 4), core + 1) << "core " << core;
  }
}

TEST(SimIsaTest, ByteAndHalfwordAccess) {
  auto r = run_asm(R"(
    li t0, 0x20000000
    li t1, -2
    sb t1, 0(t0)
    sh t1, 4(t0)
    lb t2, 0(t0)
    lbu t3, 0(t0)
    lh t4, 4(t0)
    lhu t5, 4(t0)
    sw t2, 8(t0)
    sw t3, 12(t0)
    sw t4, 16(t0)
    sw t5, 20(t0)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut + 8), 0xFFFFFFFEu);
  EXPECT_EQ(r.mem.load32(kOut + 12), 0xFEu);
  EXPECT_EQ(r.mem.load32(kOut + 16), 0xFFFFFFFEu);
  EXPECT_EQ(r.mem.load32(kOut + 20), 0xFFFEu);
}

TEST(SimIsaTest, EcallReachesHandler) {
  auto prog = vasm::assemble(R"(
    li a7, 3
    li a0, 1234
    ecall
    tmc zero
  )");
  ASSERT_TRUE(prog.is_ok());
  mem::MainMemory memory;
  memory.write(prog->base, prog->words.data(), prog->size_bytes());
  std::vector<uint32_t> calls;
  Cluster cluster(Config::with(1, 1, 1), memory,
                  [&](const EcallRequest& req, mem::MainMemory&) {
                    if (req.function == arch::kEcallPrintInt) calls.push_back(req.arg0);
                  });
  auto stats = cluster.run(prog->entry());
  ASSERT_TRUE(stats.is_ok());
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], 1234u);
}

TEST(SimIsaTest, PerfCountersTrackStalls) {
  // A tight dependent-load chain should record scoreboard or LSU stalls.
  auto r = run_asm(R"(
    li t0, 0x20000000
    li t1, 5
    sw t1, 0(t0)
    lw t2, 0(t0)
    addi t2, t2, 1
    sw t2, 0(t0)
    lw t3, 0(t0)
    addi t3, t3, 1
    sw t3, 0(t0)
    tmc zero
  )", Config::with(1, 1, 1));
  EXPECT_EQ(r.mem.load32(kOut), 7u);
  EXPECT_GT(r.stats.perf.stall_scoreboard + r.stats.perf.stall_lsu, 0u);
  EXPECT_GT(r.stats.l1d.hits + r.stats.l1d.misses, 0u);
  EXPECT_GT(r.stats.dram.reads, 0u);
}

TEST(SimIsaTest, RunawayKernelIsCaught) {
  auto prog = vasm::assemble(R"(
  forever:
    j forever
  )");
  ASSERT_TRUE(prog.is_ok());
  mem::MainMemory memory;
  memory.write(prog->base, prog->words.data(), prog->size_bytes());
  Config config = Config::with(1, 1, 1);
  config.max_cycles = 10'000;
  Cluster cluster(config, memory);
  auto stats = cluster.run(prog->entry());
  EXPECT_FALSE(stats.is_ok());
  EXPECT_EQ(stats.status().kind(), ErrorKind::kRuntimeError);
}

}  // namespace
}  // namespace fgpu::vortex
