// Encode/decode round-trip tests for every instruction class of the
// Vortex-style ISA, including the SIMT extension ops.
#include <gtest/gtest.h>

#include "arch/isa.hpp"

namespace fgpu::arch {
namespace {

TEST(IsaTest, EncodeDecodeRType) {
  for (Op op : {Op::kAdd, Op::kSub, Op::kSll, Op::kSlt, Op::kSltu, Op::kXor, Op::kSrl, Op::kSra,
                Op::kOr, Op::kAnd, Op::kMul, Op::kMulh, Op::kMulhsu, Op::kMulhu, Op::kDiv,
                Op::kDivu, Op::kRem, Op::kRemu}) {
    const Instr in{.op = op, .rd = 5, .rs1 = 6, .rs2 = 7};
    auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value()) << op_info(op).name;
    EXPECT_EQ(*out, in) << op_info(op).name;
  }
}

TEST(IsaTest, EncodeDecodeImmediates) {
  for (int32_t imm : {-2048, -1, 0, 1, 42, 2047}) {
    for (Op op : {Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori, Op::kOri, Op::kAndi, Op::kLw,
                  Op::kLb, Op::kLh, Op::kLbu, Op::kLhu, Op::kJalr, Op::kFlw}) {
      const Instr in{.op = op, .rd = 10, .rs1 = 11, .imm = imm};
      auto out = decode(encode(in));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, in) << op_info(op).name << " imm=" << imm;
    }
  }
}

TEST(IsaTest, EncodeDecodeShifts) {
  for (int32_t sh : {0, 1, 15, 31}) {
    for (Op op : {Op::kSlli, Op::kSrli, Op::kSrai}) {
      const Instr in{.op = op, .rd = 3, .rs1 = 4, .imm = sh};
      auto out = decode(encode(in));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, in);
    }
  }
}

TEST(IsaTest, EncodeDecodeStores) {
  for (int32_t imm : {-2048, -4, 0, 4, 2047}) {
    for (Op op : {Op::kSb, Op::kSh, Op::kSw, Op::kFsw}) {
      const Instr in{.op = op, .rs1 = 8, .rs2 = 9, .imm = imm};
      auto out = decode(encode(in));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, in);
    }
  }
}

TEST(IsaTest, EncodeDecodeBranches) {
  for (int32_t imm : {-4096, -8, 0, 8, 4094}) {
    for (Op op : {Op::kBeq, Op::kBne, Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu}) {
      const Instr in{.op = op, .rs1 = 1, .rs2 = 2, .imm = imm};
      auto out = decode(encode(in));
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, in) << op_info(op).name << " imm=" << imm;
    }
  }
}

TEST(IsaTest, EncodeDecodeUpperAndJumps) {
  const Instr lui{.op = Op::kLui, .rd = 7, .imm = 0xABCDE};
  EXPECT_EQ(*decode(encode(lui)), lui);
  const Instr auipc{.op = Op::kAuipc, .rd = 7, .imm = 0x12345};
  EXPECT_EQ(*decode(encode(auipc)), auipc);
  for (int32_t imm : {-(1 << 20), -4, 0, 4, (1 << 20) - 2}) {
    const Instr jal{.op = Op::kJal, .rd = 1, .imm = imm};
    auto out = decode(encode(jal));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, jal) << imm;
  }
}

TEST(IsaTest, EncodeDecodeCsr) {
  for (uint32_t csr : {kCsrThreadId, kCsrWarpId, kCsrCoreId, kCsrTmask, kCsrNumThreads,
                       kCsrNumWarps, kCsrNumCores, kCsrCycle}) {
    const Instr in{.op = Op::kCsrrs, .rd = 5, .rs1 = 0, .imm = static_cast<int32_t>(csr)};
    auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, in);
  }
}

TEST(IsaTest, EncodeDecodeFloat) {
  for (Op op : {Op::kFaddS, Op::kFsubS, Op::kFmulS, Op::kFdivS, Op::kFsgnjS, Op::kFsgnjnS,
                Op::kFsgnjxS, Op::kFminS, Op::kFmaxS, Op::kFeqS, Op::kFltS, Op::kFleS}) {
    const Instr in{.op = op, .rd = 1, .rs1 = 2, .rs2 = 3};
    auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value()) << op_info(op).name;
    EXPECT_EQ(*out, in) << op_info(op).name;
  }
  for (Op op : {Op::kFsqrtS, Op::kFcvtWS, Op::kFcvtWuS, Op::kFcvtSW, Op::kFcvtSWu, Op::kFmvXW,
                Op::kFmvWX, Op::kFclassS}) {
    const Instr in{.op = op, .rd = 4, .rs1 = 5};
    auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value()) << op_info(op).name;
    EXPECT_EQ(*out, in) << op_info(op).name;
  }
  for (Op op : {Op::kFmaddS, Op::kFmsubS, Op::kFnmsubS, Op::kFnmaddS}) {
    const Instr in{.op = op, .rd = 1, .rs1 = 2, .rs2 = 3, .rs3 = 4};
    auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value()) << op_info(op).name;
    EXPECT_EQ(*out, in) << op_info(op).name;
  }
}

TEST(IsaTest, EncodeDecodeAtomics) {
  for (Op op : {Op::kLrW, Op::kScW, Op::kAmoswapW, Op::kAmoaddW, Op::kAmoandW, Op::kAmoorW,
                Op::kAmoxorW, Op::kAmominW, Op::kAmomaxW}) {
    const Instr in{.op = op, .rd = 10, .rs1 = 11, .rs2 = 12};
    auto out = decode(encode(in));
    ASSERT_TRUE(out.has_value()) << op_info(op).name;
    EXPECT_EQ(*out, in) << op_info(op).name;
  }
}

TEST(IsaTest, EncodeDecodeSimtExtension) {
  const Instr tmc{.op = Op::kTmc, .rs1 = 5};
  EXPECT_EQ(*decode(encode(tmc)), tmc);
  const Instr wspawn{.op = Op::kWspawn, .rs1 = 5, .rs2 = 6};
  EXPECT_EQ(*decode(encode(wspawn)), wspawn);
  const Instr bar{.op = Op::kBar, .rs1 = 5, .rs2 = 6};
  EXPECT_EQ(*decode(encode(bar)), bar);
  for (int32_t imm : {-64, 8, 1024}) {
    const Instr split{.op = Op::kSplit, .rs1 = 7, .imm = imm};
    EXPECT_EQ(*decode(encode(split)), split);
    const Instr pred{.op = Op::kPred, .rs1 = 7, .imm = imm};
    EXPECT_EQ(*decode(encode(pred)), pred);
    const Instr join{.op = Op::kJoin, .imm = imm};
    EXPECT_EQ(*decode(encode(join)), join);
  }
}

// Every op in the table round-trips with generic operand values.
class IsaRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IsaRoundTrip, RoundTrips) {
  const Op op = static_cast<Op>(GetParam());
  const auto& info = op_info(op);
  Instr in{.op = op};
  switch (info.fmt) {
    case Format::kR: in.rd = 1; in.rs1 = 2; in.rs2 = info.match_rs2 ? 0 : 3; break;
    case Format::kR4: in.rd = 1; in.rs1 = 2; in.rs2 = 3; in.rs3 = 4; break;
    case Format::kI: in.rd = 1; in.rs1 = 2; in.imm = -3; break;
    case Format::kIShift: in.rd = 1; in.rs1 = 2; in.imm = 3; break;
    case Format::kS: in.rs1 = 1; in.rs2 = 2; in.imm = -4; break;
    case Format::kB: in.rs1 = 1; in.rs2 = op == Op::kSplit || op == Op::kPred ? 0 : 2; in.imm = -8; break;
    case Format::kU: in.rd = 1; in.imm = 0x12345; break;
    case Format::kJ: in.rd = op == Op::kJoin ? 0 : 1; in.imm = 16; break;
    case Format::kCsr: in.rd = 1; in.rs1 = 0; in.imm = 0xCC0; break;
    case Format::kAmo: in.rd = 1; in.rs1 = 2; in.rs2 = 3; break;
    case Format::kSys: break;
  }
  auto out = decode(encode(in));
  ASSERT_TRUE(out.has_value()) << info.name;
  EXPECT_EQ(*out, in) << info.name;
}

INSTANTIATE_TEST_SUITE_P(AllOps, IsaRoundTrip, ::testing::Range(1, kNumOps),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name = op_info(static_cast<Op>(info.param)).name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(IsaTest, MnemonicLookup) {
  EXPECT_EQ(op_by_name("add"), Op::kAdd);
  EXPECT_EQ(op_by_name("fmadd.s"), Op::kFmaddS);
  EXPECT_EQ(op_by_name("split"), Op::kSplit);
  EXPECT_EQ(op_by_name("wspawn"), Op::kWspawn);
  EXPECT_EQ(op_by_name("bogus"), std::nullopt);
}

TEST(IsaTest, RegisterNames) {
  EXPECT_EQ(xreg_by_name("zero"), 0u);
  EXPECT_EQ(xreg_by_name("sp"), 2u);
  EXPECT_EQ(xreg_by_name("a0"), 10u);
  EXPECT_EQ(xreg_by_name("t6"), 31u);
  EXPECT_EQ(xreg_by_name("x17"), 17u);
  EXPECT_EQ(xreg_by_name("nope"), std::nullopt);
  EXPECT_EQ(freg_by_name("f31"), 31u);
}

TEST(IsaTest, ToStringSmoke) {
  EXPECT_EQ(to_string(Instr{.op = Op::kAddi, .rd = 5, .rs1 = 0, .imm = 42}), "addi t0, zero, 42");
  EXPECT_EQ(to_string(Instr{.op = Op::kLw, .rd = 10, .rs1 = 2, .imm = 8}), "lw a0, 8(sp)");
  EXPECT_EQ(to_string(Instr{.op = Op::kTmc, .rs1 = 5}), "tmc t0");
  EXPECT_EQ(to_string(Instr{.op = Op::kSplit, .rs1 = 6, .imm = 16}), "split t1, 16");
}

TEST(IsaTest, InvalidWordsRejected) {
  EXPECT_FALSE(decode(0x00000000).has_value());
  EXPECT_FALSE(decode(0xFFFFFFFF).has_value());
}

}  // namespace
}  // namespace fgpu::arch
