// Tests for the declarative flag/device contradiction table (flagcheck.hpp):
// every rule is enumerated against every --device selection, and every
// contradiction must yield a non-empty usage-error line — fgpu-run maps a
// non-empty line to exit 2 in a single code path, so "non-empty message"
// here is exactly "exits 2" there.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "suite/flagcheck.hpp"

namespace fgpu::suite {
namespace {

struct NamedSelection {
  const char* spelling;  // the --device value that produces it
  DeviceSelection devices;
};

const std::vector<NamedSelection>& selections() {
  static const std::vector<NamedSelection> all = {
      {"vortex", {true, false, false}}, {"hls", {false, true, false}},
      {"turbo", {false, false, true}},  {"both", {true, true, false}},
      {"all", {true, true, true}},
  };
  return all;
}

// The truth table, restated independently of flagcheck.cpp's satisfied():
// which --device spellings legitimately serve each rule.
bool expect_ok(const FlagRule& rule, const DeviceSelection& d) {
  if (rule.needs_all) {
    return (!rule.needs_vortex || d.vortex) && (!rule.needs_hls || d.hls);
  }
  return (rule.needs_vortex && d.vortex) || (rule.needs_hls && d.hls);
}

FlagRequests request_only(const FlagRule& rule) {
  FlagRequests requests;
  requests.*rule.member = true;
  return requests;
}

TEST(FlagRules, TableCoversEveryRequestField) {
  // One rule per FlagRequests field, no duplicates — a new export flag
  // must land in the table or this count breaks.
  const auto& rules = flag_rules();
  ASSERT_EQ(rules.size(), 7u);
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      EXPECT_NE(rules[i].member, rules[j].member);
    }
    EXPECT_TRUE(rules[i].needs_vortex || rules[i].needs_hls) << rules[i].flags;
  }
}

// The exhaustive sweep: every (rule, selection) pair either passes cleanly
// or produces the complete usage-error line.
TEST(FlagRules, EveryContradictionIsRejectedEverySatisfiableComboAccepted) {
  for (const auto& rule : flag_rules()) {
    int rejected = 0, accepted = 0;
    for (const auto& sel : selections()) {
      const std::string msg = check_flag_contradictions(request_only(rule), sel.devices);
      if (expect_ok(rule, sel.devices)) {
        EXPECT_TRUE(msg.empty()) << rule.flags << " on --device=" << sel.spelling
                                 << " wrongly rejected: " << msg;
        ++accepted;
      } else {
        EXPECT_FALSE(msg.empty())
            << rule.flags << " on --device=" << sel.spelling << " wrongly accepted";
        // The message is a complete, actionable usage error.
        EXPECT_NE(msg.find("fgpu-run: "), std::string::npos) << msg;
        EXPECT_NE(msg.find(rule.flags), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::string("conflicts with --device=") + sel.spelling),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("requires --device="), std::string::npos) << msg;
        ++rejected;
      }
    }
    // Every rule must be exercised both ways by the five selections.
    EXPECT_GT(rejected, 0) << rule.flags;
    EXPECT_GT(accepted, 0) << rule.flags;
  }
}

// Spot checks of the semantics the ISSUE fixes in place (independent of
// the table's own needs_* encoding).
TEST(FlagRules, KnownSemantics) {
  const DeviceSelection vortex_only{true, false, false};
  const DeviceSelection hls_only{false, true, false};
  const DeviceSelection turbo_only{false, false, true};
  const DeviceSelection both{true, true, false};

  FlagRequests r;
  r.compare = true;  // joins both flows: only both/all work
  EXPECT_FALSE(check_flag_contradictions(r, vortex_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, hls_only).empty());
  EXPECT_TRUE(check_flag_contradictions(r, both).empty());

  r = FlagRequests{};
  r.remarks = true;  // soft-GPU compiler output: needs the vortex tier
  EXPECT_TRUE(check_flag_contradictions(r, vortex_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, hls_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, turbo_only).empty());

  r = FlagRequests{};
  r.memprof = true;  // either memory hierarchy serves
  EXPECT_TRUE(check_flag_contradictions(r, vortex_only).empty());
  EXPECT_TRUE(check_flag_contradictions(r, hls_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, turbo_only).empty());

  r = FlagRequests{};
  r.predict = true;  // analytical-vs-measured: needs cycle-exact cycles
  EXPECT_TRUE(check_flag_contradictions(r, vortex_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, hls_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, turbo_only).empty());

  r = FlagRequests{};
  r.dse = true;  // the funnel's exact stage is the soft GPU
  EXPECT_TRUE(check_flag_contradictions(r, vortex_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, hls_only).empty());
  EXPECT_FALSE(check_flag_contradictions(r, turbo_only).empty());
}

// Turbo is functional-only: no flag in the table is satisfiable by turbo
// alone, so every request contradicts --device=turbo (exit 2).
TEST(FlagRules, NothingIsSatisfiableOnTurboAlone) {
  const DeviceSelection turbo_only{false, false, true};
  for (const auto& rule : flag_rules()) {
    EXPECT_FALSE(check_flag_contradictions(request_only(rule), turbo_only).empty())
        << rule.flags;
  }
}

TEST(FlagRules, NoRequestsNeverContradict) {
  for (const auto& sel : selections()) {
    EXPECT_TRUE(check_flag_contradictions(FlagRequests{}, sel.devices).empty())
        << sel.spelling;
  }
}

TEST(FlagRules, FirstViolatedRuleWins) {
  // compare precedes remarks in the table; with both requested on an
  // hls-only run the error names --compare.
  FlagRequests r;
  r.compare = true;
  r.remarks = true;
  const std::string msg = check_flag_contradictions(r, {false, true, false});
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("--compare"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("--remarks"), std::string::npos) << msg;
}

}  // namespace
}  // namespace fgpu::suite
