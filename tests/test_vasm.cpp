// Assembler / disassembler tests: text -> binary -> text round trips and
// label/fixup resolution in the programmatic builder.
#include <gtest/gtest.h>

#include "vasm/assembler.hpp"
#include "vasm/builder.hpp"

namespace fgpu::vasm {
namespace {

TEST(AsmBuilderTest, LiSmallAndLarge) {
  AsmBuilder b;
  b.li(5, 42);
  b.li(6, 0x12345678);
  b.li(7, -1);
  b.li(8, 0x7FFFF800);  // low 12 bits are 0x800 -> needs rounding compensation
  auto prog = b.finalize();
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  // Simulate the li sequences.
  auto run_li = [&](size_t first, size_t count) -> uint32_t {
    uint32_t reg = 0;
    for (size_t i = first; i < first + count; ++i) {
      auto in = arch::decode(prog->words[i]);
      EXPECT_TRUE(in.has_value());
      if (in->op == arch::Op::kLui) {
        reg = static_cast<uint32_t>(in->imm) << 12;
      } else {
        reg += static_cast<uint32_t>(in->imm);
      }
    }
    return reg;
  };
  EXPECT_EQ(run_li(0, 1), 42u);
  EXPECT_EQ(run_li(1, 2), 0x12345678u);
  EXPECT_EQ(run_li(3, 1), 0xFFFFFFFFu);
  EXPECT_EQ(run_li(4, 2), 0x7FFFF800u);
}

TEST(AsmBuilderTest, BranchFixups) {
  AsmBuilder b;
  auto loop = b.make_label();
  auto done = b.make_label();
  b.li(5, 3);
  b.bind(loop);
  b.emit_branch(arch::Op::kBeq, 5, 0, done);
  b.emit_i(arch::Op::kAddi, 5, 5, -1);
  b.j(loop);
  b.bind(done);
  b.tmc(0);
  auto prog = b.finalize();
  ASSERT_TRUE(prog.is_ok());
  auto beq = arch::decode(prog->words[1]);
  EXPECT_EQ(beq->imm, 12);  // forward to tmc
  auto jal = arch::decode(prog->words[3]);
  EXPECT_EQ(jal->imm, -8);  // back to beq
}

TEST(AsmBuilderTest, UnboundLabelIsError) {
  AsmBuilder b;
  auto ghost = b.make_label();
  b.j(ghost);
  auto prog = b.finalize();
  EXPECT_FALSE(prog.is_ok());
}

TEST(AsmBuilderTest, LaResolvesAbsoluteAddress) {
  AsmBuilder b;
  auto target = b.make_label();
  b.la(5, target);
  b.nop();
  b.bind(target);
  b.nop();
  auto prog = b.finalize(0x10000);
  ASSERT_TRUE(prog.is_ok());
  auto auipc = arch::decode(prog->words[0]);
  auto addi = arch::decode(prog->words[1]);
  const uint32_t value =
      (0x10000 + (static_cast<uint32_t>(auipc->imm) << 12)) + static_cast<uint32_t>(addi->imm);
  EXPECT_EQ(value, 0x10000u + 12);  // label is the 4th instruction
}

TEST(AssemblerTest, BasicProgram) {
  auto prog = assemble(R"(
    # simple countdown
    li t0, 3
  loop:
    beq t0, zero, done
    addi t0, t0, -1
    j loop
  done:
    tmc zero
  )");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  EXPECT_EQ(prog->words.size(), 5u);
  EXPECT_TRUE(prog->symbols.contains("loop"));
  EXPECT_TRUE(prog->symbols.contains("done"));
  EXPECT_EQ(prog->symbols.at("loop"), prog->base + 4);
}

TEST(AssemblerTest, MemoryOperands) {
  auto prog = assemble(R"(
    lw a0, 8(sp)
    sw a0, -4(s0)
    flw f1, 0(a1)
    fsw f1, 12(a1)
    amoadd.w t0, t1, (a2)
  )");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  auto lw = arch::decode(prog->words[0]);
  EXPECT_EQ(lw->op, arch::Op::kLw);
  EXPECT_EQ(lw->imm, 8);
  auto sw = arch::decode(prog->words[1]);
  EXPECT_EQ(sw->imm, -4);
  auto amo = arch::decode(prog->words[4]);
  EXPECT_EQ(amo->op, arch::Op::kAmoaddW);
}

TEST(AssemblerTest, SimtOps) {
  auto prog = assemble(R"(
    csrr t0, 0xCC0
    andi t1, t0, 1
    split t1, odd
    addi t2, zero, 1
    join merge
  odd:
    addi t2, zero, 2
    join merge
  merge:
    tmc zero
  )");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  auto split = arch::decode(prog->words[2]);
  EXPECT_EQ(split->op, arch::Op::kSplit);
  EXPECT_EQ(split->imm, 12);  // to 'odd'
}

TEST(AssemblerTest, ErrorsAreReported) {
  EXPECT_FALSE(assemble("frobnicate t0, t1").is_ok());
  EXPECT_FALSE(assemble("addi t0, t1").is_ok());
  EXPECT_FALSE(assemble("addi q9, t1, 0").is_ok());
  EXPECT_FALSE(assemble("lw a0, nowhere").is_ok());
  EXPECT_FALSE(assemble("j missing_label").is_ok());
}

TEST(AssemblerTest, DisassembleRoundTrip) {
  const char* source = R"(
    li t0, 100
    add t1, t0, t0
    fadd.s f1, f2, f3
    tmc zero
  )";
  auto prog = assemble(source);
  ASSERT_TRUE(prog.is_ok());
  const std::string dis = prog->disassemble();
  EXPECT_NE(dis.find("add t1, t0, t0"), std::string::npos);
  EXPECT_NE(dis.find("fadd.s f1, f2, f3"), std::string::npos);
  EXPECT_NE(dis.find("tmc zero"), std::string::npos);
}

// The synthetic-label listing must survive a full assemble -> disassemble
// -> assemble cycle bit-for-bit, including the SIMT extension (SPLIT /
// JOIN / PRED / TMC / WSPAWN / BAR), branches, and memory operands. This
// is what makes profiler listings pasteable back into the assembler.
TEST(DisassemblerTest, SynthLabelListingReassemblesBitExactly) {
  const char* source = R"(
    csrr t0, 0xCC0
    andi t1, t0, 1
    wspawn t2, t3
    split t1, odd
    addi t2, zero, 1
    join merge
  odd:
    addi t2, zero, 2
    join merge
  merge:
    pred t1, after_pred
  after_pred:
    bar t0, t1
    lw a0, 8(sp)
    fadd.s f1, f2, f3
    fsw f1, 12(a1)
    amoadd.w t0, t1, (a2)
  loop:
    beq t2, zero, done
    addi t2, t2, -1
    jal ra, helper
    j loop
  helper:
    sw a0, -4(s0)
  done:
    tmc zero
  )";
  auto prog = assemble(source);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();

  DisasmOptions options;
  options.addresses = false;
  options.synth_labels = true;
  const std::string listing = prog->disassemble(options);
  EXPECT_EQ(listing.find("0x00"), std::string::npos) << "addresses leaked into the listing";

  auto again = assemble(listing, prog->base);
  ASSERT_TRUE(again.is_ok()) << again.status().to_string() << "\nlisting was:\n" << listing;
  EXPECT_EQ(again->words, prog->words);
  EXPECT_EQ(again->base, prog->base);
}

TEST(DisassemblerTest, UndecodableWordRendersAsInvalid) {
  auto prog = assemble("tmc zero");
  ASSERT_TRUE(prog.is_ok());
  ASSERT_FALSE(arch::decode(0u).has_value());  // opcode 0 is unassigned
  prog->words.push_back(0u);
  EXPECT_NE(prog->disassemble().find("<invalid>"), std::string::npos);
}

TEST(DisassemblerTest, AnnotateColumnAndSourceCommentsInterleave) {
  auto prog = assemble(R"(
    addi t0, zero, 1
    addi t1, zero, 2
    tmc zero
  )");
  ASSERT_TRUE(prog.is_ok());

  SourceMap map;
  map.sources = {"first statement", "second statement"};
  map.word_source = {0, 0, 1};
  DisasmOptions options;
  options.source_map = &map;
  options.annotate = [](uint32_t, size_t index) { return "[" + std::to_string(index) + "] "; };
  const std::string listing = prog->disassemble(options);

  // One comment per source-id *change*, not one per word.
  size_t count = 0;
  for (size_t at = listing.find("# first statement"); at != std::string::npos;
       at = listing.find("# first statement", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_NE(listing.find("# second statement"), std::string::npos);
  // The annotate column precedes every word, and the comment precedes the
  // word it describes.
  EXPECT_NE(listing.find("[0] "), std::string::npos);
  EXPECT_NE(listing.find("[2] "), std::string::npos);
  EXPECT_LT(listing.find("# second statement"), listing.find("[2] "));
}

TEST(SourceMapTest, SourceForHandlesUnmappedWords) {
  SourceMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.source_for(0), "");
  map.sources = {"only"};
  map.word_source = {-1, 0};
  EXPECT_FALSE(map.empty());
  EXPECT_EQ(map.source_for(0), "");   // unmapped word
  EXPECT_EQ(map.source_for(1), "only");
  EXPECT_EQ(map.source_for(99), "");  // out of range
}

// Property: every encodable instruction disassembles to text that the
// mnemonic table recognizes.
TEST(AssemblerTest, DisassemblyMentionsMnemonic) {
  for (int i = 1; i < arch::kNumOps; ++i) {
    const auto op = static_cast<arch::Op>(i);
    const auto& info = arch::op_info(op);
    arch::Instr in{.op = op, .rd = 1, .rs1 = 2, .rs2 = 3, .imm = 0};
    if (info.fmt == arch::Format::kB || info.fmt == arch::Format::kJ) in.imm = 8;
    if (info.fmt == arch::Format::kJ && op == arch::Op::kJoin) in.rd = 0;
    const std::string text = arch::to_string(in);
    EXPECT_EQ(text.rfind(info.name, 0), 0u) << text;
  }
}

}  // namespace
}  // namespace fgpu::vasm
