// Tests for the guest-code -O pipeline: the KIR optimization passes (DCE,
// LICM, strength reduction), the MInstr peephole, source-map integrity
// through every pass (no dangling PC entries; annotated listings still
// re-assemble), and end-to-end opt-level equivalence on the device.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "codegen/minstr.hpp"
#include "codegen/peephole.hpp"
#include "common/rng.hpp"
#include "kir/build.hpp"
#include "kir/interp.hpp"
#include "kir/passes.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"
#include "vasm/assembler.hpp"

namespace fgpu {
namespace {

using codegen::MInstr;
using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

// Runs `kernel` through the interpreter over `count` items with a fixed
// random input and returns the output buffer.
std::vector<uint32_t> interp_run(const kir::Kernel& kernel, uint32_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> in(count), out(count, 0);
  for (auto& v : in) v = rng.next_u32();
  kir::Interpreter interp;
  EXPECT_TRUE(interp
                  .run(kernel,
                       {kir::KernelArg::buffer(&in), kir::KernelArg::buffer(&out),
                        kir::KernelArg::scalar_i32(static_cast<int32_t>(count))},
                       NDRange::linear(count, 32))
                  .is_ok())
      << kernel.to_string();
  return out;
}

// ---------------------------------------------------------------------------
// KIR passes
// ---------------------------------------------------------------------------

TEST(KirOptTest, DeadCodeElimRemovesUnreadLetsAndCascades) {
  KernelBuilder kb("dce");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.let_("dead_simple", gid * 3);
  Val chain_a = kb.let_("chain_a", gid + 5);
  kb.let_("chain_b", chain_a * 7);  // only reader of chain_a, itself unread
  Val live = kb.let_("live", kb.load(in, gid) + 1);
  kb.store(out, gid, live);
  kir::Kernel kernel = kb.build();
  const kir::Kernel original = kir::clone_kernel(kernel);

  // chain_b falls first, which strands chain_a for the next round.
  EXPECT_EQ(kir::dead_code_elim(kernel), 3);
  EXPECT_TRUE(kir::verify(kernel).is_ok()) << kernel.to_string();
  EXPECT_EQ(interp_run(original, 64, 0xD0), interp_run(kernel, 64, 0xD0));
}

TEST(KirOptTest, DeadCodeElimKeepsImpureRightHandSides) {
  KernelBuilder kb("dce_load");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.let_("unread_load", kb.load(in, gid));  // load: not provably removable
  kb.store(out, gid, gid);
  kir::Kernel kernel = kb.build();
  EXPECT_EQ(kir::dead_code_elim(kernel), 0);
}

TEST(KirOptTest, StrengthReductionPreservesSemantics) {
  KernelBuilder kb("sr");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  kb.param_i32("n");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(in, gid));
  // v*16 is always reducible (shl is exact mod 2^32); gid/4 and gid%8 need
  // the non-negativity proof (global IDs are non-negative).
  kb.store(out, gid, v * 16 + gid / 4 + gid % 8);
  kir::Kernel kernel = kb.build();
  const kir::Kernel original = kir::clone_kernel(kernel);

  EXPECT_GE(kir::strength_reduce(kernel), 1);
  EXPECT_TRUE(kir::verify(kernel).is_ok()) << kernel.to_string();
  EXPECT_EQ(interp_run(original, 64, 0x51), interp_run(kernel, 64, 0x51));
}

TEST(KirOptTest, StrengthReductionLeavesSignedDivisionOfUnknownSign) {
  KernelBuilder kb("sr_signed");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  kb.param_i32("n");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(in, gid));  // arbitrary bits: may be negative
  kb.store(out, gid, v / 4);
  kir::Kernel kernel = kb.build();
  const kir::Kernel original = kir::clone_kernel(kernel);

  kir::strength_reduce(kernel);
  // Whatever was (not) rewritten, signed-division semantics must hold for
  // negative inputs (truncation toward zero != arithmetic shift).
  EXPECT_EQ(interp_run(original, 64, 0x5E), interp_run(kernel, 64, 0x5E));
}

TEST(KirOptTest, LicmHoistsInvariantProducts) {
  KernelBuilder kb("licm");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  Val row = kb.let_("row", gid & 7);
  Val acc = kb.let_("acc", Val(0));
  kb.for_("k", Val(0), n & 15, [&](Val k) {
    // row * 8 is loop-invariant; k participates, so the sum is not.
    kb.assign(acc, acc + kb.load(in, (row * 8 + k) & 63));
  });
  kb.store(out, gid, acc);
  kir::Kernel kernel = kb.build();
  const kir::Kernel original = kir::clone_kernel(kernel);

  EXPECT_GE(kir::licm(kernel), 1);
  EXPECT_TRUE(kir::verify(kernel).is_ok()) << kernel.to_string();
  const std::string text = kernel.to_string();
  EXPECT_NE(text.find("licm"), std::string::npos) << text;
  EXPECT_EQ(interp_run(original, 64, 0x11), interp_run(kernel, 64, 0x11));
}

// ---------------------------------------------------------------------------
// MInstr peephole
// ---------------------------------------------------------------------------

MInstr li(int rd, int32_t v) {
  MInstr m;
  m.is_li = true;
  m.rd = rd;
  m.imm = v;
  return m;
}

MInstr rr(arch::Op op, int rd, int rs1, int rs2) {
  MInstr m;
  m.op = op;
  m.rd = rd;
  m.rs1 = rs1;
  m.rs2 = rs2;
  return m;
}

MInstr store_word(int base, int value) {
  MInstr m;
  m.op = arch::Op::kSw;
  m.rs1 = base;
  m.rs2 = value;
  return m;
}

TEST(PeepholeTest, FoldsConstantArithmeticIntoLoadImmediate) {
  codegen::MFunction fn;
  const int a = fn.new_vreg(), b = fn.new_vreg(), c = fn.new_vreg();
  fn.code.push_back(li(a, 5));
  fn.code.push_back(li(b, 7));
  fn.code.push_back(rr(arch::Op::kAdd, c, a, b));
  fn.code.push_back(store_word(c, c));  // keeps c (and the chain) observable

  const auto stats = codegen::peephole(fn, 1);
  EXPECT_GE(stats.folded, 1);
  bool folded_li = false;
  for (const auto& m : fn.code) {
    if (m.is_li && m.rd == c) folded_li = m.imm == 12;
    // The source operands must be gone entirely (DCE after folding).
    EXPECT_NE(m.rd, a);
    EXPECT_NE(m.rd, b);
  }
  EXPECT_TRUE(folded_li);
}

TEST(PeepholeTest, PropagatesCopies) {
  codegen::MFunction fn;
  const int a = fn.new_vreg(), b = fn.new_vreg(), c = fn.new_vreg();
  // a has no constant value (reads physical registers), so nothing folds
  // and the copy is the only rewrite opportunity.
  fn.code.push_back(rr(arch::Op::kAdd, a, 5, 6));
  MInstr copy;
  copy.op = arch::Op::kAddi;
  copy.rd = b;
  copy.rs1 = a;
  copy.imm = 0;
  fn.code.push_back(copy);
  fn.code.push_back(rr(arch::Op::kXor, c, b, b));
  fn.code.push_back(store_word(c, c));

  const auto stats = codegen::peephole(fn, 1);
  EXPECT_GE(stats.propagated, 1);
  for (const auto& m : fn.code) {
    EXPECT_NE(m.rs1, b);
    EXPECT_NE(m.rs2, b);
    EXPECT_NE(m.rd, b);  // the dead copy itself must be gone
  }
}

TEST(PeepholeTest, ValueNumberingDeduplicatesPureComputation) {
  codegen::MFunction fn;
  const int a = fn.new_vreg();
  const int x = fn.new_vreg(), y = fn.new_vreg(), z = fn.new_vreg();
  fn.code.push_back(rr(arch::Op::kAdd, a, 5, 6));
  fn.code.push_back(rr(arch::Op::kSll, x, a, a));
  fn.code.push_back(rr(arch::Op::kSll, y, a, a));  // identical computation
  fn.code.push_back(rr(arch::Op::kXor, z, x, y));
  fn.code.push_back(store_word(z, z));

  const auto stats = codegen::peephole(fn, 2);
  EXPECT_GE(stats.numbered, 1);
  int sll_count = 0;
  for (const auto& m : fn.code) {
    if (!m.is_li && !m.is_label() && m.op == arch::Op::kSll) ++sll_count;
  }
  EXPECT_EQ(sll_count, 1);
}

TEST(PeepholeTest, FusesCompareIntoBranch) {
  codegen::MFunction fn;
  const int a = fn.new_vreg(), b = fn.new_vreg(), t = fn.new_vreg();
  const int target = fn.make_label();
  fn.code.push_back(rr(arch::Op::kAdd, a, 5, 0));
  fn.code.push_back(rr(arch::Op::kAdd, b, 6, 0));
  fn.code.push_back(rr(arch::Op::kSlt, t, a, b));
  MInstr br;
  br.op = arch::Op::kBne;
  br.rs1 = t;
  br.rs2 = 0;
  br.target = target;
  fn.code.push_back(br);
  fn.code.push_back(store_word(a, b));
  fn.label(target);

  const auto stats = codegen::peephole(fn, 2);
  EXPECT_GE(stats.fused, 1);
  bool saw_blt = false;
  for (const auto& m : fn.code) {
    if (m.is_label() || m.is_li) continue;
    if (m.op == arch::Op::kBlt) saw_blt = m.rs1 == a && m.rs2 == b;
    EXPECT_NE(m.op, arch::Op::kSlt);  // compare consumed by the branch
  }
  EXPECT_TRUE(saw_blt);
}

TEST(PeepholeTest, DeadChainIsFullyRemoved) {
  codegen::MFunction fn;
  const int a = fn.new_vreg(), b = fn.new_vreg(), c = fn.new_vreg();
  const int live = fn.new_vreg();
  fn.code.push_back(li(a, 3));
  fn.code.push_back(rr(arch::Op::kAdd, b, a, a));
  fn.code.push_back(rr(arch::Op::kMul, c, b, b));  // c never used
  fn.code.push_back(li(live, 9));
  fn.code.push_back(store_word(live, live));

  codegen::peephole(fn, 1);
  ASSERT_EQ(fn.code.size(), 2u);
  EXPECT_TRUE(fn.code[0].is_li);
  EXPECT_EQ(fn.code[0].rd, live);
}

// ---------------------------------------------------------------------------
// Source-map integrity + listing round-trip across the whole suite
// ---------------------------------------------------------------------------

// Every optimization level, every suite kernel: the PC->source line table
// must stay dense and in range (peephole deletions and regalloc rewrites
// must never leave dangling entries), and the synthetic-label listing must
// re-assemble to the identical word sequence.
TEST(OptPipelineTest, SourceMapsStayDenseAndListingsReassemble) {
  for (const auto& name : suite::all_benchmark_names()) {
    const suite::Benchmark bench = suite::make_benchmark(name);
    for (const auto& kernel : bench.module.kernels) {
      for (int level = 0; level <= 2; ++level) {
        codegen::Options options;
        options.opt_level = level;
        auto compiled = codegen::compile_kernel(kernel, options);
        ASSERT_TRUE(compiled.is_ok())
            << name << "/" << kernel.name << " -O" << level << ": "
            << compiled.status().to_string();
        EXPECT_EQ(compiled->opt_level, level);
        const auto& map = compiled->source_map;
        ASSERT_EQ(map.word_source.size(), compiled->program.words.size())
            << name << "/" << kernel.name << " -O" << level;
        for (size_t i = 0; i < map.word_source.size(); ++i) {
          const int32_t src = map.word_source[i];
          EXPECT_GE(src, 0) << name << "/" << kernel.name << " word " << i;
          EXPECT_LT(src, static_cast<int32_t>(map.sources.size()))
              << name << "/" << kernel.name << " word " << i;
        }

        vasm::DisasmOptions disasm;
        disasm.addresses = false;
        disasm.synth_labels = true;
        disasm.source_map = &map;  // provenance comments must not break it
        const std::string listing = compiled->program.disassemble(disasm);
        auto reassembled = vasm::assemble(listing, compiled->program.base);
        ASSERT_TRUE(reassembled.is_ok())
            << name << "/" << kernel.name << " -O" << level << ": "
            << reassembled.status().to_string();
        EXPECT_EQ(reassembled->words, compiled->program.words)
            << name << "/" << kernel.name << " -O" << level;
      }
    }
  }
}

TEST(OptPipelineTest, OptimizationShrinksComputeKernels) {
  const suite::Benchmark bench = suite::make_benchmark("sgemm");
  ASSERT_FALSE(bench.module.kernels.empty());
  const kir::Kernel& kernel = bench.module.kernels.front();
  codegen::Options o0;
  o0.opt_level = 0;
  codegen::Options o2;
  o2.opt_level = 2;
  auto k0 = codegen::compile_kernel(kernel, o0);
  auto k2 = codegen::compile_kernel(kernel, o2);
  ASSERT_TRUE(k0.is_ok());
  ASSERT_TRUE(k2.is_ok());
  EXPECT_LT(k2->instruction_count, k0->instruction_count);
}

TEST(OptPipelineTest, OptLevelIsClamped) {
  const suite::Benchmark bench = suite::make_benchmark("vecadd");
  codegen::Options wild;
  wild.opt_level = 99;
  auto compiled = codegen::compile_kernel(bench.module.kernels.front(), wild);
  ASSERT_TRUE(compiled.is_ok());
  EXPECT_EQ(compiled->opt_level, 2);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence on the device
// ---------------------------------------------------------------------------

// A loop-heavy divergent kernel executed at every opt level on the
// cycle-exact simulator must produce identical buffers (the fuzz suite
// covers random kernels; this covers a deterministic one with a spicy mix
// of divergence, loops, and signed arithmetic).
TEST(OptPipelineTest, DeviceOutputsIdenticalAcrossOptLevels) {
  KernelBuilder kb("levels");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  Val acc = kb.let_("acc", kb.load(in, gid));
  Val row = kb.let_("row", gid & 7);
  kb.for_("k", Val(0), gid & 7, [&](Val k) {
    kb.assign(acc, acc + kb.load(in, (row * 8 + k) & 63) * 3);
  });
  kb.if_((acc & 1) == 0, [&] { kb.assign(acc, acc / 4 + n); },
         [&] { kb.assign(acc, acc * 5 - 7); });
  kb.store(out, gid, acc);
  kir::Module module;
  module.kernels.push_back(kb.build());

  const uint32_t count = 64;
  Rng rng(0xE2E);
  std::vector<uint32_t> input(count);
  for (auto& v : input) v = rng.next_u32();

  std::vector<std::vector<uint32_t>> results;
  for (int level = 0; level <= 2; ++level) {
    codegen::Options options;
    options.opt_level = level;
    vcl::VortexDevice device(vortex::Config::with(2, 4, 8), fpga::stratix10_sx2800(), options);
    ASSERT_TRUE(device.build(module).is_ok()) << "-O" << level;
    auto in_buf = device.upload(input);
    auto out_buf = device.alloc(count * 4);
    std::vector<uint32_t> zero(count, 0);
    device.write(out_buf, zero.data(), count * 4, 0);
    auto stats = device.launch("levels", {in_buf, out_buf, static_cast<int32_t>(count)},
                               NDRange::linear(count, 32));
    ASSERT_TRUE(stats.is_ok()) << "-O" << level << ": " << stats.status().to_string();
    results.push_back(device.download<uint32_t>(out_buf));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

}  // namespace
}  // namespace fgpu
