// Tests for the compiler-observability layer (fgpu.codegen.v1): remark
// determinism — cold compile vs KernelCache replay and jobs=1 vs jobs=4
// must yield byte-identical documents at every -O level — plus the
// telescoping per-pass telemetry contract, provenance on every remark, and
// the observational-only guarantee (remarks on/off never changes the
// byte-gated stats).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/log.hpp"
#include "runtime/kernel_cache.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

namespace fgpu::suite {
namespace {

RunnerOptions remark_options(int opt_level) {
  RunnerOptions options;
  // lud exercises the pressure ladder, pathfinder the full -O2 pipeline,
  // vecadd the trivial path.
  options.filter = "^(vecadd|lud|pathfinder)$";
  options.run_hls = false;
  options.capture_remarks = true;
  options.opt_level = opt_level;
  return options;
}

std::string codegen_doc(const RunnerOptions& options) {
  auto result = run_all(options);
  EXPECT_TRUE(result.is_ok());
  std::ostringstream os;
  write_codegen_json(os, options, *result);
  return os.str();
}

// The ISSUE's replay contract: a remark stream stored in a KernelCache
// entry replays byte-identically — compiling cold and re-"compiling" via a
// cache hit export the same document, at every optimization level.
TEST(Remarks, ColdAndCacheReplayAreByteIdentical) {
  Log::level() = LogLevel::kOff;
  for (int opt_level : {0, 1, 2}) {
    auto options = remark_options(opt_level);
    vcl::KernelCache::instance().clear();
    const std::string cold = codegen_doc(options);
    const auto cold_stats = vcl::KernelCache::instance().stats();
    EXPECT_GT(cold_stats.misses, 0u) << "-O" << opt_level;

    const std::string warm = codegen_doc(options);
    const auto warm_stats = vcl::KernelCache::instance().stats();
    // The second run compiled nothing: every kernel came out of the cache.
    EXPECT_EQ(warm_stats.misses, cold_stats.misses) << "-O" << opt_level;
    EXPECT_GT(warm_stats.hits, cold_stats.hits) << "-O" << opt_level;

    EXPECT_EQ(cold, warm) << "-O" << opt_level;
    EXPECT_NE(cold.find(std::string("\"schema\": \"") + kCodegenSchema + "\""),
              std::string::npos);
  }
}

// Same determinism contract as every other exported document: sharding the
// suite across worker threads must not change a byte — remark streams are
// per-kernel and emission-ordered, and aggregation is canonical-order.
TEST(Remarks, CodegenJsonIsByteIdenticalAcrossJobCounts) {
  Log::level() = LogLevel::kOff;
  for (int opt_level : {0, 1, 2}) {
    auto options = remark_options(opt_level);
    options.jobs = 1;
    const std::string serial = codegen_doc(options);
    options.jobs = 4;
    const std::string parallel = codegen_doc(options);
    EXPECT_EQ(serial, parallel) << "-O" << opt_level;
  }
}

// The cycle join inherits both contracts at once: hotspot rankings are a
// pure function of the (deterministic) per-PC profile and the remark
// stream, so the hotspot-bearing document is byte-stable too.
TEST(Remarks, HotspotRankingIsByteIdenticalAcrossJobCounts) {
  Log::level() = LogLevel::kOff;
  auto options = remark_options(2);
  options.capture_profile = true;  // cycles for the join
  options.remark_hotspots = 5;

  options.jobs = 1;
  auto serial = run_all(options);
  ASSERT_TRUE(serial.is_ok());
  std::ostringstream serial_json;
  write_codegen_json(serial_json, options, *serial);

  options.jobs = 4;
  auto parallel = run_all(options);
  ASSERT_TRUE(parallel.is_ok());
  std::ostringstream parallel_json;
  write_codegen_json(parallel_json, options, *parallel);

  EXPECT_EQ(serial_json.str(), parallel_json.str());
  EXPECT_NE(serial_json.str().find("\"hotspots\""), std::string::npos);

  // rank_remarks' own contract: descending attributed cycles, at most K
  // entries, every entry joined to real measured work.
  for (const auto& outcome : serial->outcomes) {
    for (const auto& kc : outcome.vortex.codegen) {
      const auto ranked = rank_remarks(outcome.vortex, kc, 5);
      EXPECT_LE(ranked.size(), 5u);
      for (size_t i = 0; i < ranked.size(); ++i) {
        ASSERT_NE(ranked[i].remark, nullptr);
        EXPECT_GT(ranked[i].cycles, 0u) << outcome.name << " / " << kc.kernel;
        if (i > 0) EXPECT_GE(ranked[i - 1].cycles, ranked[i].cycles);
      }
    }
  }
}

// The telescoping contract from remarks.hpp: within each metric domain,
// stage i's `before` equals the most recent prior stage's `after`, and the
// final emit size equals the compiled kernel's real instruction count.
TEST(Remarks, PerPassTelemetryTelescopesExactly) {
  Log::level() = LogLevel::kOff;
  auto options = remark_options(2);
  auto result = run_all(options);
  ASSERT_TRUE(result.is_ok());

  int kernels_checked = 0;
  for (const auto& outcome : result->outcomes) {
    ASSERT_FALSE(outcome.vortex.codegen.empty()) << outcome.name;
    for (const auto& kc : outcome.vortex.codegen) {
      ASSERT_NE(kc.compiled, nullptr);
      const auto& report = kc.compiled->report;
      ASSERT_TRUE(report.collected);
      ASSERT_FALSE(report.passes.empty());
      EXPECT_EQ(report.passes.front().pass, "expand-builtins");
      EXPECT_EQ(report.passes.back().pass, "emit");

      // Walk every metric through the pipeline: a stage that declares a
      // `before` for a metric must agree with the last stage that declared
      // an `after` for it.
      constexpr int codegen::IrSnapshot::* kMetrics[] = {
          &codegen::IrSnapshot::kir_nodes, &codegen::IrSnapshot::minstrs,
          &codegen::IrSnapshot::vregs, &codegen::IrSnapshot::max_pressure,
          &codegen::IrSnapshot::stack_refs};
      for (auto metric : kMetrics) {
        int last = -1;
        for (const auto& stage : report.passes) {
          const int before = stage.before.*metric;
          const int after = stage.after.*metric;
          if (before >= 0 && last >= 0) {
            EXPECT_EQ(before, last)
                << outcome.name << " / " << kc.kernel << " stage " << stage.pass;
          }
          if (after >= 0) last = after;
        }
      }

      // The pipeline's final word: emit's `after` is the emitted program.
      const auto& emit = report.passes.back();
      EXPECT_EQ(emit.after.minstrs,
                static_cast<int>(kc.compiled->instruction_count));
      EXPECT_EQ(emit.after.minstrs,
                static_cast<int>(kc.compiled->program.words.size()));

      // Per-stage remark counts account for every remark the pipeline
      // emitted; only the post-pipeline pressure-ladder steps sit outside.
      int in_stages = 0;
      for (const auto& stage : report.passes) in_stages += stage.remarks;
      int ladder = 0;
      for (const auto& r : report.remarks) {
        if (r.pass == "pressure-ladder") ++ladder;
      }
      EXPECT_EQ(in_stages + ladder, static_cast<int>(report.remarks.size()))
          << outcome.name << " / " << kc.kernel;
      ++kernels_checked;
    }
  }
  EXPECT_GT(kernels_checked, 0);
}

// Every remark carries resolvable provenance and a well-formed action.
TEST(Remarks, EveryRemarkHasProvenanceAndAction) {
  Log::level() = LogLevel::kOff;
  auto options = remark_options(2);
  auto result = run_all(options);
  ASSERT_TRUE(result.is_ok());

  int remarks_seen = 0;
  for (const auto& outcome : result->outcomes) {
    for (const auto& kc : outcome.vortex.codegen) {
      for (const auto& r : kc.compiled->report.remarks) {
        EXPECT_FALSE(r.pass.empty());
        EXPECT_FALSE(r.name.empty());
        EXPECT_FALSE(r.site.empty()) << outcome.name << " " << r.pass << "." << r.name;
        EXPECT_TRUE(r.action == "applied" || r.action == "missed" || r.action == "blocked")
            << r.action;
        // Rule ids are dot-scoped ("licm.hoist", "ra.spill", ...).
        EXPECT_NE(r.name.find('.'), std::string::npos) << r.name;
        ++remarks_seen;
      }
    }
  }
  // -O2 on lud + pathfinder must produce a rich stream.
  EXPECT_GT(remarks_seen, 20);
}

// Observational-only: collecting remarks changes no byte of the byte-gated
// stats document (same binaries, same cycles — the sink only watches).
TEST(Remarks, CollectionDoesNotPerturbStats) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^(vecadd|lud|pathfinder)$";
  options.run_hls = false;

  options.capture_remarks = false;
  auto off = run_all(options);
  ASSERT_TRUE(off.is_ok());
  // With the layer off, no benchmark carries a codegen report.
  for (const auto& outcome : off->outcomes) {
    EXPECT_TRUE(outcome.vortex.codegen.empty()) << outcome.name;
  }
  std::ostringstream off_json;
  write_stats_json(off_json, options, *off);

  options.capture_remarks = true;
  auto on = run_all(options);
  ASSERT_TRUE(on.is_ok());
  std::ostringstream on_json;
  write_stats_json(on_json, options, *on);

  EXPECT_EQ(off_json.str(), on_json.str());
}

}  // namespace
}  // namespace fgpu::suite
