// Tests for the parallel suite runner and the fgpu.stats.v1 exporter:
// regex filtering, workload-seed derivation, trace capture through the
// runner, and the central determinism contract — the stats JSON is
// byte-identical whether the suite ran on 1 worker thread or 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/log.hpp"
#include "suite/compare.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

namespace fgpu::suite {
namespace {

TEST(FilterNames, EmptySelectsAllInCanonicalOrder) {
  auto names = filter_names("");
  ASSERT_TRUE(names.is_ok());
  EXPECT_EQ(*names, all_benchmark_names());
  EXPECT_EQ(names->size(), 28u);
}

TEST(FilterNames, RegexSubsetsPreserveOrder) {
  auto names = filter_names("^(transpose|vecadd)$");
  ASSERT_TRUE(names.is_ok());
  ASSERT_EQ(names->size(), 2u);
  // Canonical suite order, not regex-alternation order.
  const auto all = all_benchmark_names();
  const auto pos = [&](const std::string& n) {
    return std::find(all.begin(), all.end(), n) - all.begin();
  };
  EXPECT_LT(pos((*names)[0]), pos((*names)[1]));
}

TEST(FilterNames, BadRegexIsAnError) {
  auto names = filter_names("(unclosed");
  EXPECT_FALSE(names.is_ok());
  EXPECT_EQ(names.status().kind(), ErrorKind::kInvalidArgument);
}

TEST(BenchmarkSeed, StableAndDistinct) {
  EXPECT_EQ(benchmark_seed(1, "vecadd"), benchmark_seed(1, "vecadd"));
  EXPECT_NE(benchmark_seed(1, "vecadd"), benchmark_seed(1, "saxpy"));
  EXPECT_NE(benchmark_seed(1, "vecadd"), benchmark_seed(2, "vecadd"));
}

TEST(RunAll, RunsFilteredSubsetOnBothDevices) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^vecadd$";
  auto result = run_all(options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result->outcomes.size(), 1u);
  const auto& outcome = result->outcomes[0];
  EXPECT_EQ(outcome.name, "vecadd");
  EXPECT_TRUE(outcome.ran_vortex);
  EXPECT_TRUE(outcome.ran_hls);
  EXPECT_TRUE(outcome.vortex.ok());
  EXPECT_TRUE(outcome.hls.ok());
  EXPECT_EQ(result->vortex_passes(), 1);
  EXPECT_EQ(outcome.workload_seed, benchmark_seed(options.suite_seed, "vecadd"));
  EXPECT_EQ(outcome.trace, nullptr);  // capture_trace defaults off
}

TEST(RunAll, CapturesTraceWithKernelEvents) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^vecadd$";
  options.capture_trace = true;
  auto result = run_all(options);
  ASSERT_TRUE(result.is_ok());
  const auto& outcome = result->outcomes[0];
  if (!trace::kEnabled) {
    GTEST_SKIP() << "built with -DFGPU_TRACE=OFF";
  }
  ASSERT_NE(outcome.trace, nullptr);
  EXPECT_FALSE(outcome.trace->empty());
  // Both devices must have emitted a kernel-launch complete event whose
  // duration matches the recorded cycle count.
  int kernel_events = 0;
  for (const auto& e : outcome.trace->events()) {
    if (e.phase == trace::Phase::kComplete) {
      ++kernel_events;
      EXPECT_GT(e.dur, 0u);
    }
  }
  EXPECT_EQ(kernel_events, 2);

  std::ostringstream os;
  write_trace_json(os, *result);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"vecadd\""), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'), std::count(out.begin(), out.end(), '}'));
}

// The PR's acceptance criterion: sharding across threads must not change
// the stats in any observable way — same bytes, not just same numbers.
TEST(RunAll, StatsJsonIsByteIdenticalAcrossJobCounts) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^(vecadd|saxpy|dotproduct|transpose)$";

  options.jobs = 1;
  auto serial = run_all(options);
  ASSERT_TRUE(serial.is_ok());
  ASSERT_EQ(serial->outcomes.size(), 4u);
  std::ostringstream serial_json;
  write_stats_json(serial_json, options, *serial);

  options.jobs = 4;
  auto parallel = run_all(options);
  ASSERT_TRUE(parallel.is_ok());
  std::ostringstream parallel_json;
  write_stats_json(parallel_json, options, *parallel);

  EXPECT_EQ(serial_json.str(), parallel_json.str());
  // And the schema header is what OBSERVABILITY.md documents.
  EXPECT_NE(serial_json.str().find(std::string("\"schema\": \"") + kStatsSchema + "\""),
            std::string::npos);
}

// Same contract for the profiler export: per-PC tables, occupancy
// timelines, and conflict histograms come out of worker threads, yet the
// fgpu.profile.v1 document must not depend on scheduling.
TEST(RunAll, ProfileJsonIsByteIdenticalAcrossJobCounts) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^(vecadd|saxpy|dotproduct|transpose)$";
  options.run_hls = false;
  options.capture_profile = true;

  options.jobs = 1;
  auto serial = run_all(options);
  ASSERT_TRUE(serial.is_ok());
  ASSERT_EQ(serial->outcomes.size(), 4u);
  for (const auto& outcome : serial->outcomes) {
    EXPECT_FALSE(outcome.vortex.kernel_profiles.empty()) << outcome.name;
  }
  std::ostringstream serial_json;
  write_profile_json(serial_json, options, *serial);

  options.jobs = 4;
  auto parallel = run_all(options);
  ASSERT_TRUE(parallel.is_ok());
  std::ostringstream parallel_json;
  write_profile_json(parallel_json, options, *parallel);

  EXPECT_EQ(serial_json.str(), parallel_json.str());
  EXPECT_NE(serial_json.str().find(std::string("\"schema\": \"") + kProfileSchema + "\""),
            std::string::npos);
}

// Same contract for the HLS-side profile: per-site attribution and the
// structured synthesis reports must not depend on scheduling either.
TEST(RunAll, HlsprofJsonIsByteIdenticalAcrossJobCounts) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  // Include a failing benchmark (backprop: "Not enough BRAM") so the
  // failed-fit synth reports are exercised by the byte-compare too.
  options.filter = "^(vecadd|saxpy|backprop|transpose)$";
  options.run_vortex = false;

  options.jobs = 1;
  auto serial = run_all(options);
  ASSERT_TRUE(serial.is_ok());
  ASSERT_EQ(serial->outcomes.size(), 4u);
  for (const auto& outcome : serial->outcomes) {
    EXPECT_FALSE(outcome.hls.hls_profiles.empty()) << outcome.name;
  }
  std::ostringstream serial_json;
  write_hlsprof_json(serial_json, options, *serial);

  options.jobs = 4;
  auto parallel = run_all(options);
  ASSERT_TRUE(parallel.is_ok());
  std::ostringstream parallel_json;
  write_hlsprof_json(parallel_json, options, *parallel);

  EXPECT_EQ(serial_json.str(), parallel_json.str());
  EXPECT_NE(serial_json.str().find(std::string("\"schema\": \"") + kHlsProfSchema + "\""),
            std::string::npos);
}

// The comparison document joins both flows' runs, so it inherits both
// determinism contracts at once.
TEST(RunAll, CompareJsonIsByteIdenticalAcrossJobCounts) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^(vecadd|saxpy|backprop|hybridsort)$";

  options.jobs = 1;
  auto serial = run_all(options);
  ASSERT_TRUE(serial.is_ok());
  ASSERT_EQ(serial->outcomes.size(), 4u);
  std::ostringstream serial_json;
  write_compare_json(serial_json, options, *serial);

  options.jobs = 4;
  auto parallel = run_all(options);
  ASSERT_TRUE(parallel.is_ok());
  std::ostringstream parallel_json;
  write_compare_json(parallel_json, options, *parallel);

  EXPECT_EQ(serial_json.str(), parallel_json.str());
  const std::string json = serial_json.str();
  EXPECT_NE(json.find(std::string("\"schema\": \"") + kCompareSchema + "\""), std::string::npos);
  // vecadd/saxpy run on both flows; backprop and hybridsort are the paper's
  // Table-I HLS failures, so they must land in the failure diff.
  EXPECT_NE(json.find("\"coverage\": \"both\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\": \"vortex_only\""), std::string::npos);
  EXPECT_NE(json.find("\"hls_fail_reason\": \"Not enough BRAM\""), std::string::npos);
  EXPECT_NE(json.find("\"hls_fail_reason\": \"Atomics\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"hls_failed\""), std::string::npos);
}

// The fgpu.hlsprof.v1 exact-sum contract, asserted across the whole suite:
// for every benchmark and kernel, the per-site stall attribution accounts
// for every modeled memory-stall cycle — no leakage, no double counting.
TEST(RunAll, HlsSiteStallsSumExactlyAcrossFullSuite) {
  Log::level() = LogLevel::kOff;
  // Both boards: the paper's MX2100 (HBM2 — issue-bound, stalls mostly 0)
  // and the DDR4 SX2800, whose narrow channel makes strided benchmarks
  // genuinely bandwidth-stall so the apportionment is exercised for real.
  int kernels_with_stalls = 0;
  for (const auto* board : {&fpga::stratix10_mx2100(), &fpga::stratix10_sx2800()}) {
    RunnerOptions options;
    options.run_vortex = false;
    options.hls_board = board;
    options.jobs = 4;
    auto result = run_all(options);
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result->outcomes.size(), 28u);
    for (const auto& outcome : result->outcomes) {
      ASSERT_TRUE(outcome.ran_hls);
      EXPECT_FALSE(outcome.hls.hls_profiles.empty()) << outcome.name;
      for (const auto& profile : outcome.hls.hls_profiles) {
        uint64_t sum = 0;
        for (const auto& site : profile.sites) sum += site.stall_cycles;
        EXPECT_EQ(sum, profile.memory_stall_cycles)
            << board->name << " / " << outcome.name << " / " << profile.kernel;
        if (profile.memory_stall_cycles > 0) ++kernels_with_stalls;
        // The structured synthesis report is present for every build
        // attempt, and its rows decompose the total exactly.
        EXPECT_EQ(profile.synth.kernel, profile.kernel);
        fpga::AreaReport row_sum;
        for (const auto& row : profile.synth.rows) row_sum += row.area;
        EXPECT_EQ(row_sum.brams, profile.synth.total.brams) << profile.kernel;
        EXPECT_EQ(row_sum.aluts, profile.synth.total.aluts) << profile.kernel;
      }
    }
  }
  // The contract is only interesting if some kernels actually stall.
  EXPECT_GT(kernels_with_stalls, 0);
}

}  // namespace
}  // namespace fgpu::suite
