// HLS timing-model and board-database tests: request-cost ordering across
// LSU types and access patterns, II derivation, bandwidth effects, the
// synthesis-report contents, and fpga:: area arithmetic/utilization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fpga/board.hpp"
#include "hls/compiler.hpp"
#include "kir/build.hpp"
#include "kir/passes.hpp"
#include "runtime/hls_device.hpp"

namespace fgpu {
namespace {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

hls::AccessSite site(bool store, bool pipelined, hls::AccessPattern pattern) {
  hls::AccessSite s;
  s.is_store = store;
  s.pipelined = pipelined;
  s.pattern = pattern;
  return s;
}

TEST(HlsRequestCostTest, OrderingAcrossPatterns) {
  using hls::AccessPattern;
  // Burst loads: consecutive is amortized, strided pays, irregular pays more.
  EXPECT_LT(hls::request_cost(site(false, false, AccessPattern::kConsecutive)),
            hls::request_cost(site(false, false, AccessPattern::kStrided)));
  EXPECT_LT(hls::request_cost(site(false, false, AccessPattern::kStrided)),
            hls::request_cost(site(false, false, AccessPattern::kIrregular)));
  // Pipelined loads are worse than burst on every non-consecutive pattern
  // (the paper's "area efficiency at the expense of performance").
  EXPECT_GT(hls::request_cost(site(false, true, AccessPattern::kStrided)),
            hls::request_cost(site(false, false, AccessPattern::kStrided)));
  EXPECT_GT(hls::request_cost(site(false, true, AccessPattern::kIrregular)),
            hls::request_cost(site(false, false, AccessPattern::kIrregular)));
}

TEST(HlsTimingTest, IiGrowsWithPerItemTraffic) {
  // A kernel with an inner loop of loads has a larger II than a one-load
  // kernel: more memory-interface occupancy per item.
  auto run = [](int loop_trips) {
    KernelBuilder kb("k");
    Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
    Val gid = kb.global_id(0);
    Val acc = kb.let_("acc", Val(0.0f));
    kb.for_("i", Val(0), Val(loop_trips),
            [&](Val i) { kb.assign(acc, acc + kb.load(a, gid + i * 64)); });
    kb.store(out, gid, acc);
    kir::Module module;
    module.kernels.push_back(kb.build());
    vcl::HlsDevice device;
    EXPECT_TRUE(device.build(module).is_ok());
    const uint32_t n = 512;
    std::vector<uint32_t> data(n + 64 * 16, f2u(1.0f));
    auto in = device.upload(data);
    auto out_buf = device.alloc(n * 4);
    auto stats = device.launch("k", {in, out_buf}, NDRange::linear(n, 64));
    EXPECT_TRUE(stats.is_ok());
    return stats->initiation_interval;
  };
  EXPECT_LT(run(1), run(12));
}

TEST(HlsTimingTest, DepthReflectsExpressionLatency) {
  auto depth_of = [](const kir::Kernel& kernel) {
    auto design = hls::synthesize(kernel, fpga::stratix10_mx2100());
    EXPECT_TRUE(design.is_ok());
    return design->pipeline_depth;
  };
  KernelBuilder shallow("shallow");
  Buf a1 = shallow.buf_f32("a"), o1 = shallow.buf_f32("o");
  shallow.store(o1, shallow.global_id(0), shallow.load(a1, shallow.global_id(0)) + 1.0f);

  KernelBuilder deep("deep");
  Buf a2 = deep.buf_f32("a"), o2 = deep.buf_f32("o");
  Val x = deep.load(a2, deep.global_id(0));
  // A chain of dependent divides and sqrts makes a long critical path.
  deep.store(o2, deep.global_id(0), vsqrt(vsqrt(x / 3.0f) / 7.0f) / 11.0f);

  EXPECT_LT(depth_of(shallow.build()), depth_of(deep.build()));
}

TEST(HlsTimingTest, SynthesisReportMentionsKeyFacts) {
  KernelBuilder kb("reporter");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  kb.store(out, kb.global_id(0), kb.load(a, kb.global_id(0)));
  auto design = hls::synthesize(kb.build(), fpga::stratix10_mx2100());
  ASSERT_TRUE(design.is_ok());
  const std::string text = design->report.render();
  EXPECT_NE(text.find("reporter"), std::string::npos);
  EXPECT_NE(text.find("burst-coalesced"), std::string::npos);
  EXPECT_NE(text.find("synthesis"), std::string::npos);
}

TEST(HlsSynthReportTest, RowsSumToTotalAndCarryProvenance) {
  KernelBuilder kb("rows");
  Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  kb.store(out, gid, kb.load(a, gid) + kb.load(b, gid * 2));
  const auto kernel = kb.build();
  const auto report = hls::synth_report(kernel, fpga::stratix10_mx2100());

  EXPECT_EQ(report.kernel, "rows");
  EXPECT_EQ(report.board, fpga::stratix10_mx2100().name);
  ASSERT_FALSE(report.rows.empty());
  // The per-module rows are an exact decomposition of the total (the
  // Table II-IV contract) — and the total matches the legacy estimator.
  fpga::AreaReport sum;
  for (const auto& row : report.rows) sum += row.area;
  EXPECT_EQ(sum.aluts, report.total.aluts);
  EXPECT_EQ(sum.ffs, report.total.ffs);
  EXPECT_EQ(sum.brams, report.total.brams);
  EXPECT_EQ(sum.dsps, report.total.dsps);
  const auto legacy = hls::estimate_area(hls::analyze(kernel));
  EXPECT_EQ(report.total.brams, legacy.brams);
  EXPECT_EQ(report.total.aluts, legacy.aluts);

  // One LSU row per global access site, named with its KIR provenance.
  int lsu_rows = 0;
  bool saw_a = false, saw_b_strided = false;
  for (const auto& row : report.rows) {
    if (row.module.find("lsu") == std::string::npos) continue;
    ++lsu_rows;
    if (row.module.find("a[") != std::string::npos) saw_a = true;
    if (row.module.find("b[") != std::string::npos &&
        row.detail.find("strided") != std::string::npos) {
      saw_b_strided = true;
    }
  }
  EXPECT_EQ(lsu_rows, 3);  // 2 loads + 1 store
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b_strided);

  EXPECT_TRUE(report.fits);
  EXPECT_EQ(report.verdict, "fits");
  EXPECT_GT(report.synthesis_hours, 0.0);
  EXPECT_EQ(report.burst_load_sites, 2u);
  EXPECT_EQ(report.store_sites, 1u);
}

TEST(HlsSynthReportTest, RenderGoldenString) {
  // render() must keep reproducing the legacy prose byte-for-byte (it is
  // embedded in build logs and the fig1/fig2 bench output).
  KernelBuilder kb("golden");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  kb.store(out, kb.global_id(0), kb.load(a, kb.global_id(0)));
  const auto report = hls::synth_report(kb.build(), fpga::stratix10_mx2100());
  std::ostringstream expect;
  expect << "kernel golden: 2 global access sites (1 burst-coalesced, 0 pipelined, 1 store), "
         << "depth " << report.pipeline_depth << ", area " << report.total.to_string()
         << ", synthesis " << report.synthesis_hours << " h";
  EXPECT_EQ(report.render(), expect.str());
}

TEST(HlsSynthReportTest, FailedFitStillProducesStructuredReport) {
  // Same BRAM-hungry kernel as FitterErrorNamesResourceAndCounts: the
  // Result is an error, but synth_report still yields the Table II row.
  KernelBuilder kb("fat");
  std::vector<Buf> bufs;
  for (int i = 0; i < 16; ++i) bufs.push_back(kb.buf_f32("b" + std::to_string(i)));
  Val gid = kb.global_id(0);
  kb.for_("i", Val(0), Val(8), [&](Val i) {
    Val acc = kb.let_("acc0", Val(0.0f));
    for (int j = 0; j + 1 < 16; ++j) {
      kb.assign(acc, acc + kb.load(bufs[static_cast<size_t>(j)], gid * 3 + i * 7 + j));
    }
    kb.store(bufs[15], gid + i, acc);
  });
  const auto report = hls::synth_report(kb.build(), fpga::stratix10_mx2100());
  EXPECT_FALSE(report.fits);
  EXPECT_EQ(report.verdict, "Not enough BRAM");
  EXPECT_GT(report.utilization, 1.0);
  EXPECT_EQ(report.bottleneck, "BRAM");
  EXPECT_FALSE(report.rows.empty());
  EXPECT_GT(report.synthesis_hours, 0.0);  // failed-attempt hours
  EXPECT_NE(report.render().find("fitter: Not enough BRAM"), std::string::npos);
}

TEST(HlsTimingTest, SiteStallAttributionSumsExactly) {
  // Strided stores on the DDR4 board: bandwidth-bound, so
  // memory_stall_cycles > 0 and the per-site attribution must account for
  // every one of them.
  KernelBuilder kb("scatter");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  kb.store(out, gid * 16, kb.load(a, gid));
  kir::Module module;
  module.kernels.push_back(kb.build());
  vcl::HlsDevice device(fpga::stratix10_sx2800());
  ASSERT_TRUE(device.build(module).is_ok());
  const uint32_t n = 4096;
  std::vector<uint32_t> data(n, f2u(2.0f));
  auto in = device.upload(data);
  auto out_buf = device.alloc(n * 16 * 4);
  auto stats = device.launch("scatter", {in, out_buf}, NDRange::linear(n, 64));
  ASSERT_TRUE(stats.is_ok());

  ASSERT_EQ(stats->hls_sites.size(), 2u);  // 1 load + 1 store
  EXPECT_GT(stats->memory_stall_cycles, 0u);
  uint64_t stall_sum = 0, bytes = 0;
  for (const auto& site : stats->hls_sites) {
    stall_sum += site.stall_cycles;
    bytes += site.bytes;
    EXPECT_EQ(site.requests, static_cast<uint64_t>(n));
    EXPECT_FALSE(site.source.empty());
  }
  EXPECT_EQ(stall_sum, stats->memory_stall_cycles);  // exact, to the cycle
  EXPECT_EQ(bytes, static_cast<uint64_t>(stats->dram_bytes));
  // The strided store moves 64-byte lines per request vs the consecutive
  // load's amortized 4 bytes, so it owns the lion's share of the stalls.
  const auto& load = stats->hls_sites[0];
  const auto& store = stats->hls_sites[1];
  EXPECT_EQ(load.lsu, "burst");
  EXPECT_EQ(store.lsu, "store");
  EXPECT_EQ(store.pattern, "strided");
  EXPECT_GT(store.stall_cycles, load.stall_cycles);
}

TEST(HlsTimingTest, NoStallsMeansZeroAttribution) {
  // Consecutive traffic on HBM2 is issue-bound: no memory stalls, and the
  // attribution must agree (all-zero stall shares, occupancy still real).
  KernelBuilder kb("copy");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  kb.store(out, gid, kb.load(a, gid));
  kir::Module module;
  module.kernels.push_back(kb.build());
  vcl::HlsDevice device(fpga::stratix10_mx2100());
  ASSERT_TRUE(device.build(module).is_ok());
  const uint32_t n = 1024;
  std::vector<uint32_t> data(n, f2u(3.0f));
  auto in = device.upload(data);
  auto out_buf = device.alloc(n * 4);
  auto stats = device.launch("copy", {in, out_buf}, NDRange::linear(n, 64));
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats->memory_stall_cycles, 0u);
  ASSERT_EQ(stats->hls_sites.size(), 2u);
  for (const auto& site : stats->hls_sites) {
    EXPECT_EQ(site.stall_cycles, 0u);
    EXPECT_GT(site.occupancy_cycles, 0.0);
  }
}

TEST(HlsTimingTest, FitterErrorNamesResourceAndCounts) {
  // Enough complex access sites to overflow the MX2100.
  KernelBuilder kb("fat");
  std::vector<Buf> bufs;
  for (int i = 0; i < 16; ++i) bufs.push_back(kb.buf_f32("b" + std::to_string(i)));
  Val gid = kb.global_id(0);
  kb.for_("i", Val(0), Val(8), [&](Val i) {
    Val acc = kb.let_("acc" + std::to_string(0), Val(0.0f));
    for (int j = 0; j + 1 < 16; ++j) {
      kb.assign(acc, acc + kb.load(bufs[static_cast<size_t>(j)], gid * 3 + i * 7 + j));
    }
    kb.store(bufs[15], gid + i, acc);
  });
  auto design = hls::synthesize(kb.build(), fpga::stratix10_mx2100());
  ASSERT_FALSE(design.is_ok());
  EXPECT_EQ(design.status().kind(), ErrorKind::kResourceExceeded);
  EXPECT_NE(design.status().message().find("Not enough BRAM"), std::string::npos);
  EXPECT_NE(design.status().message().find("6847"), std::string::npos);
}

TEST(FpgaBoardTest, CapacitiesAndMemories) {
  const auto& sx = fpga::stratix10_sx2800();
  const auto& mx = fpga::stratix10_mx2100();
  EXPECT_GT(sx.capacity.brams, mx.capacity.brams);  // SX2800 is the bigger die
  EXPECT_EQ(mx.capacity.brams, 6847u);
  EXPECT_EQ(sx.dram.name, "ddr4");
  EXPECT_EQ(mx.dram.name, "hbm2");
  EXPECT_TRUE(mx.heterogeneous_memory);
  EXPECT_FALSE(sx.heterogeneous_memory);
}

TEST(FpgaBoardTest, UtilizationAndBottleneck) {
  const auto& board = fpga::stratix10_mx2100();
  fpga::AreaReport bram_heavy{1'000, 1'000, 7'000, 10};
  EXPECT_FALSE(board.fits(bram_heavy));
  EXPECT_EQ(board.bottleneck_resource(bram_heavy), "BRAM");
  EXPECT_NEAR(board.utilization(bram_heavy), 7000.0 / 6847.0, 1e-9);

  fpga::AreaReport alut_heavy{1'500'000, 1'000, 10, 10};
  EXPECT_FALSE(board.fits(alut_heavy));
  EXPECT_EQ(board.bottleneck_resource(alut_heavy), "ALUT");

  fpga::AreaReport tiny{10, 10, 10, 10};
  EXPECT_TRUE(board.fits(tiny));
}

TEST(FpgaAreaReportTest, Arithmetic) {
  fpga::AreaReport a{10, 20, 30, 40};
  fpga::AreaReport b{1, 2, 3, 4};
  const auto sum = a + b;
  EXPECT_EQ(sum.aluts, 11u);
  EXPECT_EQ(sum.dsps, 44u);
  const auto scaled = b * 3;
  EXPECT_EQ(scaled.brams, 9u);
  EXPECT_NE(a.to_string().find("BRAMs=30"), std::string::npos);
}

TEST(HlsAreaPropertyTest, EveryExtraLoadSiteCostsArea) {
  // Area must be strictly monotone in the number of access sites.
  uint64_t previous = 0;
  for (int loads = 1; loads <= 5; ++loads) {
    KernelBuilder kb("k");
    Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
    Val gid = kb.global_id(0);
    Val acc = kb.let_("acc", Val(0.0f));
    for (int i = 0; i < loads; ++i) kb.assign(acc, acc + kb.load(a, gid + i));
    kb.store(out, gid, acc);
    const auto area = hls::estimate_area(hls::analyze(kb.build()));
    EXPECT_GT(area.brams, previous);
    previous = area.brams;
  }
}

TEST(HlsAreaPropertyTest, BarrierKernelsPayReplication) {
  auto build = [](bool with_barrier) {
    KernelBuilder kb("k");
    Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
    Val gid = kb.global_id(0);
    Val v = kb.let_("v", kb.load(a, gid));
    if (with_barrier) kb.barrier();
    kb.store(out, gid, v);
    return hls::estimate_area(hls::analyze(kb.build()));
  };
  EXPECT_GT(build(true).brams, build(false).brams);
}

TEST(HlsTimingTest, Hbm2BoardFasterOnIrregularTraffic) {
  KernelBuilder kb("gather");
  Buf idx = kb.buf_i32("idx"), a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  kb.store(out, gid, kb.load(a, kb.load(idx, gid)));
  kir::Module module;
  module.kernels.push_back(kb.build());

  const uint32_t n = 2048;
  Rng rng(4);
  std::vector<uint32_t> indices(n);
  for (auto& v : indices) v = rng.next_below(n);
  std::vector<uint32_t> data(n, f2u(1.0f));

  uint64_t cycles[2] = {0, 0};
  int i = 0;
  for (const auto* board : {&fpga::stratix10_sx2800(), &fpga::stratix10_mx2100()}) {
    vcl::HlsDevice device(*board);
    EXPECT_TRUE(device.build(module).is_ok());
    auto ib = device.upload(indices);
    auto ab = device.upload(data);
    auto ob = device.alloc(n * 4);
    auto stats = device.launch("gather", {ib, ab, ob}, NDRange::linear(n, 64));
    EXPECT_TRUE(stats.is_ok());
    cycles[i++] = stats->device_cycles;
  }
  EXPECT_LE(cycles[1], cycles[0]);  // HBM2 never slower, usually faster
}

}  // namespace
}  // namespace fgpu
