// Turbo tier correctness tests (ISSUE: binary-translation functional
// device). The contract under test, from DESIGN.md "Execution tiers":
// turbo is a FUNCTIONAL tier — its architectural results (output digests,
// memory contents) must be bit-identical to the cycle-exact simulator,
// while it reports no cycles at all. The block cache is an implementation
// detail with observable counters: retained across launches and kernel
// switches within one build, flushed only at the build() boundary.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/log.hpp"
#include "mem/memory.hpp"
#include "suite/runner.hpp"
#include "vasm/assembler.hpp"
#include "vortex/cluster.hpp"
#include "vortex/jit/turbo.hpp"

namespace fgpu {
namespace {

// ---------------------------------------------------------------------------
// A/B: turbo vs cycle-exact output digests over the whole Table-I suite
// ---------------------------------------------------------------------------

void run_suite_digest_ab(int opt_level) {
  Log::level() = LogLevel::kOff;
  suite::RunnerOptions options;
  options.run_hls = false;
  options.run_turbo = true;
  options.opt_level = opt_level;
  auto result = suite::run_all(options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  for (const auto& outcome : result->outcomes) {
    ASSERT_TRUE(outcome.ran_vortex && outcome.ran_turbo) << outcome.name;
    EXPECT_TRUE(outcome.vortex.ok()) << outcome.name;
    EXPECT_TRUE(outcome.turbo.ok()) << outcome.name;
    // The acceptance bit: every checked output buffer hashes identically.
    EXPECT_NE(outcome.vortex.output_digest, 0u) << outcome.name;
    EXPECT_EQ(outcome.turbo.output_digest, outcome.vortex.output_digest)
        << outcome.name << " at -O" << opt_level;
    // Functional-only: the turbo tier must never fabricate a timing claim.
    EXPECT_EQ(outcome.turbo.total_cycles, 0u) << outcome.name;
    EXPECT_GT(outcome.turbo.total_instrs, 0u) << outcome.name;
    EXPECT_TRUE(outcome.turbo.kernel_profiles.empty()) << outcome.name;
  }
}

TEST(TurboSuiteTest, DigestsMatchCycleExactAtO2) { run_suite_digest_ab(2); }

// -O0 is the straight-lowering oracle: no optimizer between KIR and the
// guest binary, so a digest match here isolates the translator itself.
TEST(TurboSuiteTest, DigestsMatchCycleExactAtO0) { run_suite_digest_ab(0); }

// ---------------------------------------------------------------------------
// Block cache: retention across launches/kernels, invalidation on build
// ---------------------------------------------------------------------------

constexpr const char* kLoopProgram = R"(
    li t0, 100
    li t1, 0
  loop:
    add t1, t1, t0
    addi t0, t0, -1
    bne t0, zero, loop
    li t2, 0x20000000
    sw t1, 0(t2)
    tmc zero
)";

TEST(TurboBlockCacheTest, RelaunchReusesBlocksAndInvalidateFlushes) {
  auto prog = vasm::assemble(kLoopProgram);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  mem::MainMemory memory;
  memory.write(prog->base, prog->words.data(), prog->size_bytes());
  vortex::jit::TurboEngine engine(vortex::Config::with(1, 4, 8), memory);

  ASSERT_TRUE(engine.run(prog->entry()).is_ok());
  EXPECT_EQ(memory.load32(0x20000000), 5050u);  // sum 1..100
  const auto after_first = engine.stats();
  EXPECT_GT(after_first.blocks_translated, 0u);
  // The 100-iteration loop re-enters its own block: dominated by hits (or
  // chained dispatches, which skip the lookup entirely).
  EXPECT_GT(after_first.block_hits + after_first.chained_dispatches,
            after_first.blocks_translated);
  EXPECT_EQ(after_first.invalidations, 0u);

  // Relaunch of the same kernel: the cache must survive — zero new
  // translations, identical guest retirement, identical result.
  ASSERT_TRUE(engine.run(prog->entry()).is_ok());
  EXPECT_EQ(memory.load32(0x20000000), 5050u);
  const auto after_second = engine.stats();
  EXPECT_EQ(after_second.blocks_translated, after_first.blocks_translated);
  EXPECT_EQ(after_second.instrs, 2 * after_first.instrs);
  EXPECT_EQ(after_second.invalidations, 0u);

  // invalidate() models the build() boundary (the code region is about to
  // be rewritten): every block drops, so the next run retranslates all of
  // them, and the flush is counted.
  engine.invalidate();
  ASSERT_TRUE(engine.run(prog->entry()).is_ok());
  EXPECT_EQ(memory.load32(0x20000000), 5050u);
  const auto after_flush = engine.stats();
  EXPECT_EQ(after_flush.blocks_translated, 2 * after_first.blocks_translated);
  EXPECT_EQ(after_flush.invalidations, 1u);
}

TEST(TurboBlockCacheTest, KernelSwitchSwapsCachesInsteadOfFlushing) {
  auto prog = vasm::assemble(kLoopProgram);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  mem::MainMemory memory;
  memory.write(prog->base, prog->words.data(), prog->size_bytes());
  vortex::jit::TurboEngine engine(vortex::Config::with(1, 4, 8), memory);

  // Two "kernels" of one build (same binary here — the cache key is the
  // kernel name, since all binaries of a build share the load base).
  engine.select_kernel("fan1");
  ASSERT_TRUE(engine.run(prog->entry()).is_ok());
  const uint64_t per_kernel = engine.stats().blocks_translated;
  ASSERT_GT(per_kernel, 0u);

  // First run of the second kernel translates into its own cache...
  engine.select_kernel("fan2");
  ASSERT_TRUE(engine.run(prog->entry()).is_ok());
  EXPECT_EQ(engine.stats().blocks_translated, 2 * per_kernel);

  // ...and alternating launches (the gaussian Fan1/Fan2 pattern) stay warm
  // in both directions: no further translations, no invalidations.
  engine.select_kernel("fan1");
  ASSERT_TRUE(engine.run(prog->entry()).is_ok());
  engine.select_kernel("fan2");
  ASSERT_TRUE(engine.run(prog->entry()).is_ok());
  EXPECT_EQ(engine.stats().blocks_translated, 2 * per_kernel);
  EXPECT_EQ(engine.stats().invalidations, 0u);
  EXPECT_EQ(memory.load32(0x20000000), 5050u);
}

// ---------------------------------------------------------------------------
// Divergence-heavy unit kernel: turbo vs cycle-exact, lane for lane
// ---------------------------------------------------------------------------

// Nested split/join inside a pred-masked per-lane loop: lane l runs l+1
// iterations, each iteration diverging on the outer lane<4 test and the
// inner parity test. Exercises the IPDOM stack, partial-mask block
// execution (the coalesced-memory fast path must fall back), and
// reconvergence — the paths most likely to differ between the two tiers.
constexpr const char* kDivergentProgram = R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0        # lane id
    slti t2, t1, 4
    andi t3, t1, 1
    li t4, 0              # accumulator
    addi t5, t1, 1        # counter: lane+1 iterations
    csrr s0, 0xCC3        # save full mask
  loop:
    sltu t6, zero, t5
    pred t6, fixup
    split t2, outer_else
    split t3, inner_else1
    addi t4, t4, 11
    join inner_merge1
  inner_else1:
    addi t4, t4, 10
    join inner_merge1
  inner_merge1:
    join outer_merge
  outer_else:
    split t3, inner_else2
    addi t4, t4, 21
    join inner_merge2
  inner_else2:
    addi t4, t4, 20
    join inner_merge2
  inner_merge2:
    join outer_merge
  outer_merge:
    addi t5, t5, -1
    j loop
  fixup:
    tmc s0
    li t6, 0x20000000
    slli t0, t1, 2
    add t6, t6, t0
    sw t4, 0(t6)
    tmc zero
)";

TEST(TurboDivergenceTest, NestedDivergenceMatchesCycleExact) {
  auto prog = vasm::assemble(kDivergentProgram);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  const auto config = vortex::Config::with(1, 4, 8);

  mem::MainMemory cycle_mem;
  cycle_mem.write(prog->base, prog->words.data(), prog->size_bytes());
  vortex::Cluster cluster(config, cycle_mem);
  auto cycle_run = cluster.run(prog->entry());
  ASSERT_TRUE(cycle_run.is_ok()) << cycle_run.status().to_string();

  mem::MainMemory turbo_mem;
  turbo_mem.write(prog->base, prog->words.data(), prog->size_bytes());
  vortex::jit::TurboEngine engine(config, turbo_mem);
  ASSERT_TRUE(engine.run(prog->entry()).is_ok());

  for (uint32_t lane = 0; lane < 8; ++lane) {
    const uint32_t addr = 0x20000000 + lane * 4;
    // (lane+1) iterations of (lane<4 ? 10 : 20) + parity.
    const uint32_t expected = (lane + 1) * ((lane < 4 ? 10u : 20u) + lane % 2);
    EXPECT_EQ(cycle_mem.load32(addr), expected) << "cycle lane " << lane;
    EXPECT_EQ(turbo_mem.load32(addr), cycle_mem.load32(addr))
        << "turbo lane " << lane;
  }
  // Both tiers retire the same dynamic instruction stream here (no atomics,
  // single warp): the functional tier's only "stat" must agree with the
  // oracle's count exactly.
  EXPECT_EQ(engine.last_run_instrs(), cycle_run->perf.instrs);
}

}  // namespace
}  // namespace fgpu
