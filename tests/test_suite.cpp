// Suite-level integration tests: every one of the paper's 28 benchmarks
// runs and verifies on the soft GPU, and the HLS flow reproduces the
// paper's Table I coverage outcome per benchmark. Plus independent
// native-C++ reference checks for selected benchmarks (validating the
// interpreter oracle itself).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "kir/passes.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"

namespace fgpu {
namespace {

class SuiteVortex : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteVortex, RunsAndVerifies) {
  Log::level() = LogLevel::kOff;
  auto bench = suite::make_benchmark(GetParam());
  ASSERT_FALSE(bench.module.kernels.empty());
  vcl::VortexDevice device(vortex::Config::with(4, 8, 8));
  const auto run = suite::run_benchmark(device, bench);
  EXPECT_TRUE(run.build.is_ok()) << run.build.to_string();
  EXPECT_TRUE(run.run.is_ok()) << run.run.to_string();
  EXPECT_TRUE(run.verify.is_ok()) << run.verify.to_string();
  EXPECT_GT(run.total_cycles, 0u);
}

class SuiteHlsCoverage : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteHlsCoverage, MatchesPaperTableI) {
  Log::level() = LogLevel::kOff;
  const std::string& name = GetParam();
  auto bench = suite::make_benchmark(name);
  vcl::HlsDevice device;
  const auto run = suite::run_benchmark(device, bench);

  const bool paper_bram_fail =
      name == "lbm" || name == "backprop" || name == "b+tree" || name == "dwt2d" || name == "lud";
  const bool paper_atomics_fail = name == "hybridsort";
  if (paper_bram_fail) {
    EXPECT_FALSE(run.build.is_ok());
    EXPECT_EQ(run.fail_reason, "Not enough BRAM") << run.build.to_string();
  } else if (paper_atomics_fail) {
    EXPECT_FALSE(run.build.is_ok());
    EXPECT_EQ(run.fail_reason, "Atomics") << run.build.to_string();
  } else {
    EXPECT_TRUE(run.ok()) << run.build.to_string() << " | " << run.run.to_string() << " | "
                          << run.verify.to_string();
  }
}

std::string sanitize(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(All, SuiteVortex, ::testing::ValuesIn(suite::all_benchmark_names()),
                         sanitize);
INSTANTIATE_TEST_SUITE_P(All, SuiteHlsCoverage,
                         ::testing::ValuesIn(suite::all_benchmark_names()), sanitize);

// ---------------------------------------------------------------------------
// Independent native references (the interpreter oracle must agree with
// plain C++ implementations within floating-point tolerance).
// ---------------------------------------------------------------------------

float rel_err(float got, float want) {
  return std::fabs(got - want) / (std::fabs(want) + 1e-6f);
}

TEST(SuiteNativeReference, VecaddExact) {
  auto bench = suite::make_benchmark("vecadd");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const auto& a = bench.buffers[0];
  const auto& b = bench.buffers[1];
  const auto& c = (*result)[2];
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_EQ(u2f(c[i]), u2f(a[i]) + u2f(b[i])) << i;
  }
}

TEST(SuiteNativeReference, MatmulTolerance) {
  auto bench = suite::make_benchmark("matmul");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t n = 40;
  const auto& a = bench.buffers[0];
  const auto& b = bench.buffers[1];
  const auto& c = (*result)[2];
  for (uint32_t row = 0; row < n; row += 7) {
    for (uint32_t col = 0; col < n; col += 7) {
      double acc = 0;
      for (uint32_t k = 0; k < n; ++k) {
        acc += static_cast<double>(u2f(a[row * n + k])) * u2f(b[k * n + col]);
      }
      EXPECT_LT(rel_err(u2f(c[row * n + col]), static_cast<float>(acc)), 1e-4f);
    }
  }
}

TEST(SuiteNativeReference, PsortProducesSortedPermutation) {
  auto bench = suite::make_benchmark("psort");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  std::vector<int32_t> input, output;
  for (uint32_t v : bench.buffers[0]) input.push_back(static_cast<int32_t>(v));
  for (uint32_t v : (*result)[0]) output.push_back(static_cast<int32_t>(v));
  EXPECT_TRUE(std::is_sorted(output.begin(), output.end()));
  std::sort(input.begin(), input.end());
  EXPECT_EQ(input, output);
}

TEST(SuiteNativeReference, PathfinderDynamicProgram) {
  auto bench = suite::make_benchmark("pathfinder");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t cols = 512, rows = 16;
  const auto& wall = bench.buffers[0];
  std::vector<int32_t> dp(cols);
  for (uint32_t c = 0; c < cols; ++c) dp[c] = static_cast<int32_t>(wall[c]);
  for (uint32_t r = 1; r < rows; ++r) {
    std::vector<int32_t> next(cols);
    for (uint32_t c = 0; c < cols; ++c) {
      int32_t best = dp[c];
      if (c > 0) best = std::min(best, dp[c - 1]);
      if (c + 1 < cols) best = std::min(best, dp[c + 1]);
      next[c] = static_cast<int32_t>(wall[r * cols + c]) + best;
    }
    dp = std::move(next);
  }
  // Final row lands in buffer 1 (odd number of remaining rows -> see bench).
  const auto& final_buf = (*result)[(rows - 1) % 2 == 1 ? 2 : 1];
  for (uint32_t c = 0; c < cols; ++c) {
    EXPECT_EQ(static_cast<int32_t>(final_buf[c]), dp[c]) << "col " << c;
  }
}

TEST(SuiteNativeReference, KmeansAssignsNearestCentroid) {
  auto bench = suite::make_benchmark("kmeans");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t points = 1024, k = 8, dims = 4;
  const auto& features = bench.buffers[0];
  const auto& clusters = bench.buffers[1];
  const auto& membership = (*result)[2];
  for (uint32_t p = 0; p < points; p += 37) {
    int best = 0;
    float best_dist = 3.4e38f;
    for (uint32_t c = 0; c < k; ++c) {
      float dist = 0;
      for (uint32_t d = 0; d < dims; ++d) {
        const float diff = u2f(features[p * dims + d]) - u2f(clusters[c * dims + d]);
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<int>(c);
      }
    }
    EXPECT_EQ(static_cast<int>(membership[p]), best) << "point " << p;
  }
}

TEST(SuiteNativeReference, GaussianSolvesSystem) {
  // After Fan1/Fan2 elimination, back-substitution must satisfy A0 x = b0.
  auto bench = suite::make_benchmark("gaussian");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t n = 32;
  const auto& a0 = bench.buffers[0];
  const auto& b0 = bench.buffers[1];
  const auto& a = (*result)[0];
  const auto& b = (*result)[1];
  std::vector<double> x(n, 0.0);
  for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
    double sum = u2f(b[static_cast<uint32_t>(i)]);
    for (uint32_t j = static_cast<uint32_t>(i) + 1; j < n; ++j) {
      sum -= static_cast<double>(u2f(a[static_cast<uint32_t>(i) * n + j])) * x[j];
    }
    x[static_cast<uint32_t>(i)] = sum / u2f(a[static_cast<uint32_t>(i) * n + i]);
  }
  for (uint32_t i = 0; i < n; i += 5) {
    double lhs = 0;
    for (uint32_t j = 0; j < n; ++j) lhs += static_cast<double>(u2f(a0[i * n + j])) * x[j];
    EXPECT_NEAR(lhs, u2f(b0[i]), 1e-2) << "row " << i;
  }
}

TEST(SuiteNativeReference, NwMatchesSequentialDp) {
  auto bench = suite::make_benchmark("nw");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t n = 48, size = n + 1;
  const int32_t penalty = 10;
  const auto& reference = bench.buffers[1];
  std::vector<int32_t> dp(size * size, 0);
  for (uint32_t k = 0; k < size; ++k) {
    dp[k] = -static_cast<int32_t>(k) * penalty;
    dp[k * size] = -static_cast<int32_t>(k) * penalty;
  }
  for (uint32_t i = 1; i < size; ++i) {
    for (uint32_t j = 1; j < size; ++j) {
      const int32_t diag =
          dp[(i - 1) * size + j - 1] + static_cast<int32_t>(reference[i * size + j]);
      dp[i * size + j] =
          std::max({diag, dp[(i - 1) * size + j] - penalty, dp[i * size + j - 1] - penalty});
    }
  }
  const auto& items = (*result)[0];
  for (uint32_t i = 1; i < size; i += 9) {
    for (uint32_t j = 1; j < size; j += 9) {
      EXPECT_EQ(static_cast<int32_t>(items[i * size + j]), dp[i * size + j])
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(SuiteNativeReference, BlackscholesClosedForm) {
  auto bench = suite::make_benchmark("blackscholes");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  auto cnd = [](double d) {
    const double k = 1.0 / (1.0 + 0.2316419 * std::fabs(d));
    const double poly =
        k * (0.319381530 +
             k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    const double w = 1.0 - 0.39894228040 * std::exp(-0.5 * d * d) * poly;
    return d < 0 ? 1.0 - w : w;
  };
  const double r = 0.02, vol = 0.30;
  for (uint32_t i = 0; i < 2048; i += 111) {
    const double s = u2f(bench.buffers[0][i]);
    const double x = u2f(bench.buffers[1][i]);
    const double t = u2f(bench.buffers[2][i]);
    const double d1 = (std::log(s / x) + (r + 0.5 * vol * vol) * t) / (vol * std::sqrt(t));
    const double d2 = d1 - vol * std::sqrt(t);
    const double call = s * cnd(d1) - x * std::exp(-r * t) * cnd(d2);
    // Deep out-of-the-money options have tiny values where single-precision
    // CND differences amplify relative error; allow 2%.
    EXPECT_LT(rel_err(u2f((*result)[3][i]), static_cast<float>(call)), 2e-2f) << "option " << i;
  }
}

TEST(SuiteNativeReference, SpmvMatchesDense) {
  auto bench = suite::make_benchmark("spmv");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t rows = 512;
  const auto& row_ptr = bench.buffers[0];
  const auto& cols = bench.buffers[1];
  const auto& vals = bench.buffers[2];
  const auto& x = bench.buffers[3];
  for (uint32_t r = 0; r < rows; r += 19) {
    float acc = 0;
    for (uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      acc += u2f(vals[k]) * u2f(x[cols[k]]);
    }
    EXPECT_LT(rel_err(u2f((*result)[4][r]), acc), 1e-4f) << "row " << r;
  }
}

TEST(SuiteNativeReference, BtreeFindKLocatesKeys) {
  auto bench = suite::make_benchmark("b+tree");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const auto& keys = bench.buffers[2];
  const auto& queries = bench.buffers[3];
  const auto& answers = (*result)[4];
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto it = std::find(keys.begin(), keys.end(), queries[q]);
    const int expected = it == keys.end() ? -1 : static_cast<int>(it - keys.begin());
    EXPECT_EQ(static_cast<int>(answers[q]), expected) << "query " << q;
  }
}

TEST(SuiteNativeReference, BtreeRangeCounts) {
  auto bench = suite::make_benchmark("b+tree");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const auto& keys = bench.buffers[2];
  const auto& queries = bench.buffers[3];
  const auto& counts = (*result)[5];
  const int32_t range = 24;
  for (size_t q = 0; q < queries.size(); q += 13) {
    const int32_t lo = static_cast<int32_t>(queries[q]);
    int expected = 0;
    for (uint32_t key : keys) {
      const auto k = static_cast<int32_t>(key);
      if (k >= lo && k < lo + range) ++expected;
    }
    EXPECT_EQ(static_cast<int>(counts[q]), expected) << "query " << q;
  }
}

TEST(SuiteNativeReference, BfsLevelsMatchNativeBfs) {
  auto bench = suite::make_benchmark("bfs");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t nodes = 512, degree = 4;
  const auto& edges = bench.buffers[2];
  std::vector<int> level(nodes, -1);
  std::vector<uint32_t> frontier = {0};
  level[0] = 0;
  while (!frontier.empty()) {
    std::vector<uint32_t> next;
    for (uint32_t v : frontier) {
      for (uint32_t e = 0; e < degree; ++e) {
        const uint32_t u = edges[v * degree + e];
        if (level[u] < 0) {
          level[u] = level[v] + 1;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  const auto& cost = (*result)[6];
  const auto& visited = (*result)[5];
  for (uint32_t v = 0; v < nodes; ++v) {
    if (level[v] >= 0) {
      EXPECT_EQ(visited[v], 1u) << "node " << v;
      EXPECT_EQ(static_cast<int>(cost[v]), level[v]) << "node " << v;
    } else {
      EXPECT_EQ(visited[v], 0u) << "node " << v;
    }
  }
}

TEST(SuiteNativeReference, LudReconstructsMatrix) {
  auto bench = suite::make_benchmark("lud");
  auto result = suite::reference_run(bench);
  ASSERT_TRUE(result.is_ok());
  const uint32_t n = 32;
  const auto& a0 = bench.buffers[0];
  const auto& lu = (*result)[0];
  // L (unit lower) x U must reproduce the original matrix.
  for (uint32_t i = 0; i < n; i += 5) {
    for (uint32_t j = 0; j < n; j += 5) {
      double acc = 0;
      const uint32_t kmax = std::min(i, j);
      for (uint32_t k = 0; k < kmax; ++k) {
        acc += static_cast<double>(u2f(lu[i * n + k])) * u2f(lu[k * n + j]);
      }
      if (i <= j) {
        acc += u2f(lu[i * n + j]);  // diagonal of L is 1
      } else {
        acc += static_cast<double>(u2f(lu[i * n + kmax])) * u2f(lu[kmax * n + j]);
      }
      EXPECT_NEAR(acc, u2f(a0[i * n + j]), 0.05) << "(" << i << "," << j << ")";
    }
  }
}

TEST(SuiteProperty, AllBenchmarksHaveVerifiedNotes) {
  for (const auto& name : suite::all_benchmark_names()) {
    auto bench = suite::make_benchmark(name);
    EXPECT_FALSE(bench.module.kernels.empty()) << name;
    EXPECT_FALSE(bench.origin.empty()) << name;
    EXPECT_FALSE(bench.notes.empty()) << name;
    EXPECT_FALSE(bench.launches.empty()) << name;
    for (const auto& kernel : bench.module.kernels) {
      EXPECT_TRUE(kir::verify(kernel).is_ok()) << name << "/" << kernel.name;
    }
    // Work-group sizes stay within the suite's dispatch cap.
    for (const auto& launch : bench.launches) {
      EXPECT_LE(launch.ndrange.local_items(), suite::Benchmark::kMaxWorkGroup)
          << name << "/" << launch.kernel;
    }
  }
}

}  // namespace
}  // namespace fgpu
