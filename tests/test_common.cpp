// Tests for the common utilities: Status/Result, bit helpers, and the
// deterministic PRNG the workload generators rely on.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace fgpu {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.to_string(), "OK");

  Status err(ErrorKind::kResourceExceeded, "Not enough BRAM");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.kind(), ErrorKind::kResourceExceeded);
  EXPECT_EQ(err.to_string(), "resource-exceeded: Not enough BRAM");
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(42);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad(ErrorKind::kNotFound, "missing");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().kind(), ErrorKind::kNotFound);
}

TEST(ResultTest, TakeMoves) {
  Result<std::string> r(std::string("payload"));
  const std::string taken = r.take();
  EXPECT_EQ(taken, "payload");
}

TEST(BitsTest, ExtractAndPlace) {
  EXPECT_EQ(bits(0xABCD1234, 8, 8), 0x12u);
  EXPECT_EQ(bits(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);
  EXPECT_EQ(place(0x3, 4, 2), 0x30u);
  EXPECT_EQ(place(0xFF, 0, 4), 0x0Fu);  // masked to field width
}

TEST(BitsTest, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x0, 12), 0);
}

TEST(BitsTest, PowersAndAlignment) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(17), 4u);
  EXPECT_EQ(log2_ceil(17), 5u);
  EXPECT_EQ(log2_ceil(16), 4u);
  EXPECT_EQ(align_up(13, 8), 16u);
  EXPECT_EQ(align_up(16, 8), 16u);
}

TEST(BitsTest, FloatBitcastRoundTrip) {
  for (float f : {0.0f, -0.0f, 1.5f, -3.25e10f}) {
    EXPECT_EQ(u2f(f2u(f)), f);
  }
  EXPECT_EQ(f2u(1.0f), 0x3F800000u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
  // Different seeds diverge quickly.
  Rng a2(123);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a2.next_u32() != c.next_u32()) ++differing;
  }
  EXPECT_GT(differing, 8);
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int32_t v = rng.next_range(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    const float f = rng.next_float(2.0f, 3.0f);
    EXPECT_GE(f, 2.0f);
    EXPECT_LT(f, 3.0f);
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, RoughlyUniform) {
  Rng rng(99);
  int buckets[8] = {0};
  const int draws = 8000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.next_below(8)];
  for (int count : buckets) {
    EXPECT_GT(count, draws / 8 - 200);
    EXPECT_LT(count, draws / 8 + 200);
  }
}

}  // namespace
}  // namespace fgpu
