// Suite-level memory-profiler tests (fgpu.mem.v1): determinism across
// worker counts, zero drift of the stats document when profiling is on,
// exact-sum contracts across real benchmarks, and the provenance joins
// (per-PC on the soft GPU, per-AccessSite on the HLS read path).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "arch/isa.hpp"
#include "common/log.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"

namespace fgpu::suite {
namespace {

RunnerOptions memprof_options(const std::string& filter) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = filter;
  options.capture_memprof = true;
  return options;
}

// The mem document comes out of worker threads, yet must not depend on
// scheduling: profiles are merged per benchmark in canonical order and
// every container iterated at export is ordered.
TEST(MemProf, MemJsonIsByteIdenticalAcrossJobCounts) {
  RunnerOptions options = memprof_options("^(vecadd|saxpy|dotproduct|transpose)$");

  options.jobs = 1;
  auto serial = run_all(options);
  ASSERT_TRUE(serial.is_ok());
  ASSERT_EQ(serial->outcomes.size(), 4u);
  std::ostringstream serial_json;
  write_mem_json(serial_json, options, *serial);

  options.jobs = 4;
  auto parallel = run_all(options);
  ASSERT_TRUE(parallel.is_ok());
  std::ostringstream parallel_json;
  write_mem_json(parallel_json, options, *parallel);

  EXPECT_EQ(serial_json.str(), parallel_json.str());
  EXPECT_NE(serial_json.str().find(std::string("\"schema\": \"") + kMemSchema + "\""),
            std::string::npos);
}

// Zero cycle drift: profiling is observational, so the fgpu.stats.v1
// document — cycle counts included — must be byte-identical with the
// profiler on or off.
TEST(MemProf, StatsJsonIsByteIdenticalWithMemprofOnOrOff) {
  RunnerOptions options = memprof_options("^(vecadd|gaussian|nw)$");

  options.capture_memprof = false;
  auto off = run_all(options);
  ASSERT_TRUE(off.is_ok());
  std::ostringstream off_json;
  write_stats_json(off_json, options, *off);

  options.capture_memprof = true;
  auto on = run_all(options);
  ASSERT_TRUE(on.is_ok());
  std::ostringstream on_json;
  // Serialize with the same options value so only the profiler's effect on
  // the simulation (which must be none) could differ.
  options.capture_memprof = false;
  write_stats_json(on_json, options, *on);

  EXPECT_EQ(off_json.str(), on_json.str());
}

// Event-driven idle skipping freezes the hierarchy between events; the
// time-weighted occupancy accounting must charge those windows exactly
// once, so the whole mem document is identical with skipping on or off.
TEST(MemProf, MemJsonIsByteIdenticalAcrossIdleSkip) {
  RunnerOptions options = memprof_options("^(vecadd|saxpy)$");
  options.run_hls = false;

  options.vortex_config.idle_skip = true;
  auto skipping = run_all(options);
  ASSERT_TRUE(skipping.is_ok());
  std::ostringstream skip_json;
  write_mem_json(skip_json, options, *skipping);

  options.vortex_config.idle_skip = false;
  auto ticking = run_all(options);
  ASSERT_TRUE(ticking.is_ok());
  std::ostringstream tick_json;
  options.vortex_config.idle_skip = true;  // serialize under identical options
  write_mem_json(tick_json, options, *ticking);

  EXPECT_EQ(skip_json.str(), tick_json.str());
}

// The tentpole contracts over real benchmarks: per level,
// compulsory + capacity + conflict == misses, the reuse histogram (plus
// cold) covers every access, the by_tag attribution partitions the
// aggregate exactly, and every attributed PC resolves through the kernel
// image and source map.
TEST(MemProf, ExactSumAndProvenanceAcrossBenchmarks) {
  RunnerOptions options = memprof_options("^(vecadd|gaussian|kmeans|nw)$");
  options.jobs = 2;
  auto result = run_all(options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result->outcomes.size(), 4u);

  const auto check_level = [](const std::string& where, const mem::CacheMemProfile& p) {
    EXPECT_EQ(p.classes.total(), p.misses) << where;
    EXPECT_EQ(p.reuse_total(), p.accesses) << where;
    mem::MissClasses by_tag_sum;
    for (const auto& [tag, cls] : p.by_tag) by_tag_sum += cls;
    EXPECT_EQ(by_tag_sum, p.classes) << where;
  };

  for (const auto& outcome : result->outcomes) {
    ASSERT_FALSE(outcome.vortex.mem_profiles.empty()) << outcome.name;
    for (const auto& mp : outcome.vortex.mem_profiles) {
      ASSERT_TRUE(mp.mem.enabled);
      check_level(outcome.name + "/l1d", mp.mem.l1d);
      check_level(outcome.name + "/l1i", mp.mem.l1i);
      check_level(outcome.name + "/l2", mp.mem.l2);
      EXPECT_GT(mp.mem.l1d.accesses, 0u) << outcome.name;
      EXPECT_GT(mp.mem.dram.total_requests(), 0u) << outcome.name;
      // Every attributed PC must decode to a real instruction of this
      // kernel's image and carry KIR provenance.
      ASSERT_FALSE(mp.binary.words.empty()) << outcome.name;
      for (const auto& [pc, cls] : mp.mem.l1d.by_tag) {
        const size_t index = (pc - mp.binary.base) / 4;
        ASSERT_LT(index, mp.binary.words.size()) << outcome.name;
        EXPECT_TRUE(arch::decode(mp.binary.words[index]).has_value()) << outcome.name;
      }
    }
    if (!outcome.hls.ok()) continue;
    ASSERT_FALSE(outcome.hls.mem_profiles.empty()) << outcome.name;
    for (const auto& mp : outcome.hls.mem_profiles) {
      check_level(outcome.name + "/readpath", mp.hls_mem);
      EXPECT_GT(mp.hls_mem.accesses, 0u) << outcome.name;
      EXPECT_TRUE(mp.hls_mem.mshr_cycles.empty());  // shadow-only: no MSHRs
      // Every tag is an index into the design's access-site table.
      ASSERT_FALSE(mp.sites.empty()) << outcome.name;
      for (const auto& [tag, cls] : mp.hls_mem.by_tag) {
        ASSERT_LT(tag, mp.sites.size()) << outcome.name;
        EXPECT_NE(mp.sites[tag].lsu, "store") << outcome.name;
      }
    }
  }
}

// Off by default: no profile containers are populated unless requested, so
// the default path allocates nothing for profiling.
TEST(MemProf, DisabledByDefault) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^vecadd$";
  auto result = run_all(options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_TRUE(result->outcomes[0].vortex.mem_profiles.empty());
  EXPECT_TRUE(result->outcomes[0].hls.mem_profiles.empty());
}

}  // namespace
}  // namespace fgpu::suite
