// Tests for the device-pool lifecycle (PR 8): Device::reset() must restore
// construction-time state exactly — a benchmark run on a recycled device is
// indistinguishable, counter for counter and byte for byte, from the same
// run on a freshly constructed one. Also covers the process-wide caches the
// pool leans on: the compiled-kernel cache (same pointer on hit, distinct
// entries per options/target) and the generated-workload cache.
#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/kernel_cache.hpp"
#include "runtime/turbo_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/compare.hpp"
#include "suite/device_pool.hpp"
#include "suite/runner.hpp"
#include "suite/suite.hpp"

namespace fgpu::suite {
namespace {

// ---------------------------------------------------------------------------
// Process-wide caches

TEST(KernelCache, HitReturnsSharedEntryAndCounts) {
  const Benchmark bench = make_benchmark("vecadd");
  ASSERT_FALSE(bench.module.kernels.empty());
  const kir::Kernel& kernel = bench.module.kernels[0];
  const codegen::Options options;

  auto& cache = vcl::KernelCache::instance();
  const auto before = cache.stats();
  auto first = cache.compile(kernel, options, "lifecycle-test-target");
  auto second = cache.compile(kernel, options, "lifecycle-test-target");
  ASSERT_TRUE(first.status.is_ok());
  ASSERT_TRUE(second.status.is_ok());
  // A hit is the *same* compiled object, not an equal copy.
  EXPECT_EQ(first.compiled.get(), second.compiled.get());
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_GE(after.hits, before.hits + 1);
  EXPECT_GT(after.compile_ms, before.compile_ms);

  // A different target identity must not alias, even for the same kernel
  // and options (the DESIGN.md cache-key contract).
  auto other_target = cache.compile(kernel, options, "lifecycle-test-target-b");
  ASSERT_TRUE(other_target.status.is_ok());
  EXPECT_NE(other_target.compiled.get(), first.compiled.get());

  // Different codegen options miss too — and -O0 vs -O2 genuinely produce
  // different binaries for a real kernel.
  codegen::Options o0 = options;
  o0.opt_level = 0;
  auto unopt = cache.compile(kernel, o0, "lifecycle-test-target");
  ASSERT_TRUE(unopt.status.is_ok());
  EXPECT_NE(unopt.compiled.get(), first.compiled.get());
}

TEST(WorkloadCache, SharesOneImmutableInstance) {
  clear_workload_cache();
  auto first = shared_benchmark("vecadd");
  auto second = shared_benchmark("vecadd");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = workload_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  // The memoized oracle rides in the same cache: one interpretation, then
  // shared — and its buffers equal an inline reference_run exactly.
  auto ref_a = shared_reference("vecadd");
  auto ref_b = shared_reference("vecadd");
  ASSERT_NE(ref_a, nullptr);
  EXPECT_EQ(ref_a.get(), ref_b.get());
  EXPECT_EQ(workload_cache_stats().reference_misses, 1u);
  EXPECT_EQ(workload_cache_stats().reference_hits, 1u);
  auto inline_ref = reference_run(*first);
  ASSERT_TRUE(inline_ref.is_ok());
  EXPECT_EQ(*ref_a, *inline_ref);
  // And the cached instance is the same workload make_benchmark builds.
  const Benchmark direct = make_benchmark("vecadd");
  EXPECT_EQ(first->name, direct.name);
  EXPECT_EQ(first->buffers, direct.buffers);
  EXPECT_EQ(first->launches.size(), direct.launches.size());
  clear_workload_cache();
  EXPECT_EQ(workload_cache_stats().misses, 0u);
}

// ---------------------------------------------------------------------------
// Cycle-exact tier: reset() vs fresh construction

// bfs is the divergence-heavy probe (data-dependent frontier branching),
// lbm the memory-bound one (19-point streaming stencil, HLS BRAM failure in
// Table I). Run each on a fresh device and on a device dirtied by the
// *other* benchmark and re-armed with reset(): cycles, instruction counts,
// output digests, per-PC profiles and PerfCounters must match exactly.
TEST(DeviceLifecycle, VortexResetMatchesFreshDevice) {
  Log::level() = LogLevel::kOff;
  vortex::Config config = vortex::Config::with(4, 8, 8);
  config.profile = true;  // per-PC tables make the comparison strict
  const Benchmark bfs = make_benchmark("bfs");
  const Benchmark lbm = make_benchmark("lbm");

  vcl::VortexDevice dev_a(config);  // fresh reference for bfs
  const DeviceRun bfs_fresh = run_benchmark(dev_a, bfs);
  vcl::VortexDevice dev_b(config);  // fresh reference for lbm
  const DeviceRun lbm_fresh = run_benchmark(dev_b, lbm);
  ASSERT_TRUE(bfs_fresh.ok());
  ASSERT_TRUE(lbm_fresh.ok());

  // Cross-arm: each device now re-runs the *other* workload after reset(),
  // so stale caches/DRAM/profiler state from a different benchmark is what
  // reset() has to erase.
  dev_b.reset();
  const DeviceRun bfs_reused = run_benchmark(dev_b, bfs);
  dev_a.reset();
  const DeviceRun lbm_reused = run_benchmark(dev_a, lbm);
  ASSERT_TRUE(bfs_reused.ok());
  ASSERT_TRUE(lbm_reused.ok());

  const auto expect_identical = [](const DeviceRun& fresh, const DeviceRun& reused,
                                   const char* tag) {
    EXPECT_EQ(fresh.total_cycles, reused.total_cycles) << tag;
    EXPECT_EQ(fresh.total_instrs, reused.total_instrs) << tag;
    EXPECT_EQ(fresh.output_digest, reused.output_digest) << tag;
    ASSERT_EQ(fresh.kernel_profiles.size(), reused.kernel_profiles.size()) << tag;
    for (size_t i = 0; i < fresh.kernel_profiles.size(); ++i) {
      const KernelProfile& f = fresh.kernel_profiles[i];
      const KernelProfile& r = reused.kernel_profiles[i];
      EXPECT_EQ(f.kernel, r.kernel) << tag;
      EXPECT_EQ(f.launches, r.launches) << tag;
      EXPECT_EQ(f.perf, r.perf) << tag << "/" << f.kernel;
      EXPECT_EQ(f.profile.by_pc, r.profile.by_pc) << tag << "/" << f.kernel;
      EXPECT_EQ(f.profile.l1d_set_conflicts, r.profile.l1d_set_conflicts) << tag;
      EXPECT_EQ(f.profile.l2_set_conflicts, r.profile.l2_set_conflicts) << tag;
      ASSERT_EQ(f.profile.occupancy.size(), r.profile.occupancy.size()) << tag;
      for (size_t s = 0; s < f.profile.occupancy.size(); ++s) {
        EXPECT_EQ(f.profile.occupancy[s].cycle, r.profile.occupancy[s].cycle) << tag;
        EXPECT_EQ(f.profile.occupancy[s].ready, r.profile.occupancy[s].ready) << tag;
        EXPECT_EQ(f.profile.occupancy[s].blocked, r.profile.occupancy[s].blocked) << tag;
        EXPECT_EQ(f.profile.occupancy[s].idle, r.profile.occupancy[s].idle) << tag;
      }
    }
  };
  expect_identical(bfs_fresh, bfs_reused, "bfs");
  expect_identical(lbm_fresh, lbm_reused, "lbm");
}

// Same A/B with the memory profiler on: the mem-hierarchy miss classes of a
// reused device must match a fresh one (stale L1/L2/DRAM state would show
// up here first, as cold misses turning into hits).
TEST(DeviceLifecycle, VortexResetMatchesFreshMemProfile) {
  Log::level() = LogLevel::kOff;
  vortex::Config config = vortex::Config::with(4, 8, 8);
  config.memprof = true;
  const Benchmark lbm = make_benchmark("lbm");
  const Benchmark bfs = make_benchmark("bfs");

  vcl::VortexDevice fresh(config);
  const DeviceRun a = run_benchmark(fresh, lbm);
  vcl::VortexDevice reused(config);
  (void)run_benchmark(reused, bfs);  // dirty the hierarchy
  reused.reset();
  const DeviceRun b = run_benchmark(reused, lbm);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a.total_cycles, b.total_cycles);
  ASSERT_EQ(a.mem_profiles.size(), b.mem_profiles.size());
  ASSERT_FALSE(a.mem_profiles.empty());
  for (size_t i = 0; i < a.mem_profiles.size(); ++i) {
    const mem::MemHierarchyProfile& f = a.mem_profiles[i].mem;
    const mem::MemHierarchyProfile& r = b.mem_profiles[i].mem;
    EXPECT_EQ(f.l1d.classes, r.l1d.classes);
    EXPECT_EQ(f.l1d.by_tag, r.l1d.by_tag);
    EXPECT_EQ(f.l1d.reuse, r.l1d.reuse);
    EXPECT_EQ(f.l2.classes, r.l2.classes);
    EXPECT_EQ(f.l2.by_tag, r.l2.by_tag);
    EXPECT_EQ(f.l1d.mshr_cycles, r.l1d.mshr_cycles);
  }
}

// ---------------------------------------------------------------------------
// Functional tier: translation retention across reset()

TEST(DeviceLifecycle, TurboResetKeepsTranslationsForSameBinarySet) {
  Log::level() = LogLevel::kOff;
  vcl::TurboDevice dev(vortex::Config::with(4, 8, 8));
  const Benchmark bfs = make_benchmark("bfs");

  const DeviceRun first = run_benchmark(dev, bfs);
  ASSERT_TRUE(first.ok());
  const vortex::jit::TurboStats warm = dev.jit_stats();
  EXPECT_GT(warm.blocks_translated, 0u);

  // reset() + rebuild of the byte-identical binary set: translated blocks
  // carry over — the warm --repeat case. Zero new translations, zero
  // counted invalidations, same functional result.
  dev.reset();
  const DeviceRun second = run_benchmark(dev, bfs);
  ASSERT_TRUE(second.ok());
  const vortex::jit::TurboStats after = dev.jit_stats();
  EXPECT_EQ(second.output_digest, first.output_digest);
  EXPECT_EQ(second.total_instrs, first.total_instrs);
  EXPECT_EQ(after.blocks_translated, warm.blocks_translated);
  EXPECT_EQ(after.invalidations, warm.invalidations);
  EXPECT_GT(after.block_hits, warm.block_hits);
}

TEST(DeviceLifecycle, TurboResetDropsTranslationsForDifferentBinarySet) {
  Log::level() = LogLevel::kOff;
  vcl::TurboDevice dev(vortex::Config::with(4, 8, 8));
  const Benchmark bfs = make_benchmark("bfs");
  const Benchmark vecadd = make_benchmark("vecadd");

  (void)run_benchmark(dev, bfs);
  const vortex::jit::TurboStats warm = dev.jit_stats();

  // A different benchmark's binary set digests differently: the stale
  // blocks are dropped *silently* (no counted invalidation — a fresh
  // device's empty caches would not have counted one either), and the run
  // matches a fresh device bit for bit.
  dev.reset();
  const DeviceRun reused = run_benchmark(dev, vecadd);
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(dev.jit_stats().invalidations, warm.invalidations);

  vcl::TurboDevice fresh(vortex::Config::with(4, 8, 8));
  const DeviceRun reference = run_benchmark(fresh, vecadd);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reused.output_digest, reference.output_digest);
  EXPECT_EQ(reused.total_instrs, reference.total_instrs);
}

// ---------------------------------------------------------------------------
// HLS tier: reset() vs fresh, through the synthesis cache

TEST(DeviceLifecycle, HlsResetMatchesFreshDevice) {
  Log::level() = LogLevel::kOff;
  const Benchmark stencil = make_benchmark("stencil");
  const Benchmark vecadd = make_benchmark("vecadd");

  vcl::HlsDevice fresh;
  const DeviceRun a = run_benchmark(fresh, stencil);
  vcl::HlsDevice reused;
  (void)run_benchmark(reused, vecadd);  // dirty buffers + build state
  reused.reset();
  const DeviceRun b = run_benchmark(reused, stencil);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.output_digest, b.output_digest);
  EXPECT_EQ(a.area.brams, b.area.brams);
  EXPECT_EQ(a.area.aluts, b.area.aluts);
  EXPECT_EQ(a.synthesis_hours, b.synthesis_hours);
  ASSERT_EQ(a.hls_profiles.size(), b.hls_profiles.size());
  for (size_t i = 0; i < a.hls_profiles.size(); ++i) {
    const HlsKernelProfile& f = a.hls_profiles[i];
    const HlsKernelProfile& r = b.hls_profiles[i];
    EXPECT_EQ(f.device_cycles, r.device_cycles);
    EXPECT_EQ(f.memory_stall_cycles, r.memory_stall_cycles);
    ASSERT_EQ(f.sites.size(), r.sites.size());
    for (size_t s = 0; s < f.sites.size(); ++s) {
      EXPECT_EQ(f.sites[s].requests, r.sites[s].requests);
      EXPECT_EQ(f.sites[s].bytes, r.sites[s].bytes);
      EXPECT_EQ(f.sites[s].stall_cycles, r.sites[s].stall_cycles);
    }
  }
}

// ---------------------------------------------------------------------------
// Suite-wide contract: every byte-gated document is identical pooled vs
// --fresh, at both ends of the -O spectrum (the CI cmp gate in test form).

TEST(DeviceLifecycle, SuiteDocsByteIdenticalPooledVsFresh) {
  Log::level() = LogLevel::kOff;
  for (const int opt_level : {0, 2}) {
    RunnerOptions options;
    // Divergence-heavy (bfs), memory-bound (lbm, also the Table-I BRAM
    // failure so failed-synth reports are in the byte compare), a stencil,
    // and a baseline streaming kernel.
    options.filter = "^(vecadd|stencil|lbm|bfs)$";
    options.jobs = 2;
    options.opt_level = opt_level;
    options.run_turbo = true;
    options.capture_profile = true;
    options.capture_memprof = true;

    options.reuse_devices = true;
    auto pooled = run_all(options);
    ASSERT_TRUE(pooled.is_ok());
    ASSERT_EQ(pooled->outcomes.size(), 4u);
    // The pool only hands out warm devices *within* one run_all here, but
    // the workload + kernel caches must have been exercised.
    EXPECT_GT(pooled->reuse.workload_cache_misses + pooled->reuse.workload_cache_hits, 0u);

    options.reuse_devices = false;
    auto fresh = run_all(options);
    ASSERT_TRUE(fresh.is_ok());

    const auto doc = [&](auto writer, const SuiteRunResult& result) {
      std::ostringstream os;
      writer(os, options, result);
      return os.str();
    };
    EXPECT_EQ(doc(write_stats_json, *pooled), doc(write_stats_json, *fresh))
        << "-O" << opt_level;
    EXPECT_EQ(doc(write_profile_json, *pooled), doc(write_profile_json, *fresh))
        << "-O" << opt_level;
    EXPECT_EQ(doc(write_hlsprof_json, *pooled), doc(write_hlsprof_json, *fresh))
        << "-O" << opt_level;
    EXPECT_EQ(doc(write_compare_json, *pooled), doc(write_compare_json, *fresh))
        << "-O" << opt_level;
    EXPECT_EQ(doc(write_mem_json, *pooled), doc(write_mem_json, *fresh)) << "-O" << opt_level;
  }
}

// An externally owned pool kept across run_all calls (the fgpu-run --repeat
// wiring): the second run must reuse devices, hit the kernel cache for
// every compile, and still produce byte-identical stats.
TEST(DeviceLifecycle, WarmPoolAcrossRunsHitsCachesAndKeepsBytes) {
  Log::level() = LogLevel::kOff;
  RunnerOptions options;
  options.filter = "^(vecadd|bfs)$";
  options.run_turbo = true;
  DevicePool pool;
  options.pool = &pool;

  auto cold = run_all(options);
  ASSERT_TRUE(cold.is_ok());
  auto warm = run_all(options);
  ASSERT_TRUE(warm.is_ok());

  EXPECT_GT(warm->reuse.device_reuse_count, 0u);
  // Every kernel of the warm run was compiled in the cold run under the
  // same options/target: all cache hits, no compile wall.
  EXPECT_GT(warm->reuse.kernel_cache_hits, 0u);
  EXPECT_EQ(warm->reuse.kernel_cache_misses, 0u);
  EXPECT_EQ(warm->reuse.hls_cache_misses, 0u);
  EXPECT_EQ(warm->reuse.workload_cache_misses, 0u);
  for (const auto& outcome : warm->outcomes) {
    EXPECT_TRUE(outcome.vortex_reused) << outcome.name;
    EXPECT_TRUE(outcome.hls_reused) << outcome.name;
    EXPECT_TRUE(outcome.turbo_reused) << outcome.name;
  }

  std::ostringstream cold_json, warm_json;
  write_stats_json(cold_json, options, *cold);
  write_stats_json(warm_json, options, *warm);
  EXPECT_EQ(cold_json.str(), warm_json.str());
}

}  // namespace
}  // namespace fgpu::suite
