// HLS compiler-model tests: DFG analysis, access-pattern classification,
// area estimation, the O1/O2 optimizations' area effect, fitter failures
// (BRAM exhaustion and atomics-on-HBM2), and functional execution through
// the HLS device matching the soft GPU.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hls/compiler.hpp"
#include "kir/build.hpp"
#include "kir/passes.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/vortex_device.hpp"

namespace fgpu {
namespace {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

kir::Kernel make_vecadd() {
  KernelBuilder kb("vecadd");
  Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), c = kb.buf_f32("c");
  Val gid = kb.global_id(0);
  kb.store(c, gid, kb.load(a, gid) + kb.load(b, gid));
  return kb.build();
}

TEST(HlsAnalysisTest, VecaddCensus) {
  auto dfg = hls::analyze(make_vecadd());
  EXPECT_EQ(dfg.global_load_sites(), 2u);
  EXPECT_EQ(dfg.global_store_sites(), 1u);
  EXPECT_EQ(dfg.burst_load_sites(), 2u);
  EXPECT_EQ(dfg.fp_add, 1u);
  for (const auto& site : dfg.sites) {
    EXPECT_EQ(site.pattern, hls::AccessPattern::kConsecutive) << site.buffer_name;
  }
}

TEST(HlsAnalysisTest, PatternClassification) {
  KernelBuilder kb("patterns");
  Buf a = kb.buf_f32("a"), idx = kb.buf_i32("idx"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  Val n = kb.param_i32("n");
  kb.store(out, gid * 4 + 1, kb.load(a, gid));          // strided store, consecutive load
  kb.store(out, gid + n, kb.load(a, kb.load(idx, gid)));  // consecutive store, gather
  auto dfg = hls::analyze(kb.build());
  ASSERT_EQ(dfg.sites.size(), 5u);
  // Order of discovery: store indexes are classified per site.
  int consecutive = 0, strided = 0, irregular = 0;
  for (const auto& site : dfg.sites) {
    switch (site.pattern) {
      case hls::AccessPattern::kConsecutive: ++consecutive; break;
      case hls::AccessPattern::kStrided: ++strided; break;
      case hls::AccessPattern::kIrregular: ++irregular; break;
    }
  }
  EXPECT_EQ(strided, 1);    // out[gid*4+1]
  EXPECT_EQ(irregular, 1);  // a[idx[gid]]
  EXPECT_EQ(consecutive, 3);
}

TEST(HlsAnalysisTest, LetSubstitutionKeepsPattern) {
  KernelBuilder kb("letsub");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  Val i = kb.let_("i", gid + 5);
  kb.store(out, i, kb.load(a, i));
  auto dfg = hls::analyze(kb.build());
  for (const auto& site : dfg.sites) {
    EXPECT_EQ(site.pattern, hls::AccessPattern::kConsecutive);
  }
}

TEST(HlsAreaTest, VecaddNearPaperNumbers) {
  // Paper Table III: vecadd = 83,792 ALUT / 263,632 FF / 1,065 BRAM / 1 DSP.
  auto area = hls::estimate_area(hls::analyze(make_vecadd()));
  EXPECT_NEAR(static_cast<double>(area.brams), 1065.0, 1065.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(area.aluts), 83792.0, 83792.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(area.ffs), 263632.0, 263632.0 * 0.25);
  EXPECT_EQ(area.dsps, 1u);
}

TEST(HlsAreaTest, PipelinedLoadShrinksArea) {
  kir::Kernel kernel = make_vecadd();
  const auto before = hls::estimate_area(hls::analyze(kernel));
  EXPECT_EQ(kir::mark_pipelined_loads(kernel), 2);
  const auto after = hls::estimate_area(hls::analyze(kernel));
  EXPECT_LT(after.brams, before.brams);
  EXPECT_LT(after.aluts, before.aluts);
  // Two burst LSUs (416 BRAM each) replaced by pipelined units (4 each).
  EXPECT_NEAR(static_cast<double>(before.brams - after.brams), 2.0 * (416 - 4), 40.0);
}

TEST(HlsAreaTest, VariableReuseShrinksArea) {
  // Mirror of the paper's Listing 1 -> Listing 2: repeated loads collapse.
  KernelBuilder kb("bpnn_like");
  Buf w = kb.buf_f32("w"), delta = kb.buf_f32("delta"), ly = kb.buf_f32("ly"),
      oldw = kb.buf_f32("oldw");
  Val gid = kb.global_id(0);
  Val ix = kb.let_("index_x", gid & 15);
  Val iy = kb.let_("index_y", gid >> 4);
  kb.store(w, gid,
           kb.load(w, gid) + kb.load(delta, ix) * 0.3f * kb.load(ly, iy) +
               0.3f * kb.load(oldw, gid));
  kb.store(oldw, gid,
           kb.load(delta, ix) * 0.3f * kb.load(ly, iy) + 0.3f * kb.load(oldw, gid));
  kir::Kernel kernel = kb.build();
  const auto before = hls::estimate_area(hls::analyze(kernel));
  const int reused = kir::cse_variable_reuse(kernel);
  EXPECT_GE(reused, 2);
  const auto after = hls::estimate_area(hls::analyze(kernel));
  EXPECT_LT(after.brams, before.brams);
  EXPECT_TRUE(kir::verify(kernel).is_ok()) << kir::verify(kernel).to_string();
}

TEST(HlsSynthesisTest, VecaddFitsOnMx2100) {
  auto design = hls::synthesize(make_vecadd(), fpga::stratix10_mx2100());
  ASSERT_TRUE(design.is_ok()) << design.status().to_string();
  EXPECT_GT(design->pipeline_depth, 0u);
  EXPECT_GT(design->synthesis_hours, 0.3);
  EXPECT_LT(design->synthesis_hours, 3.0);
}

TEST(HlsSynthesisTest, AtomicsFailOnHbm2Board) {
  KernelBuilder kb("hist");
  Buf keys = kb.buf_i32("keys"), bins = kb.buf_i32("bins");
  kb.atomic_add(bins, kb.load(keys, kb.global_id(0)) & 255, Val(1));
  auto design = hls::synthesize(kb.build(), fpga::stratix10_mx2100());
  ASSERT_FALSE(design.is_ok());
  EXPECT_EQ(design.status().kind(), ErrorKind::kUnsupported);
  EXPECT_NE(design.status().message().find("Atomics"), std::string::npos);
  // The same kernel synthesizes against a DDR4 board.
  auto ddr4 = hls::synthesize(kb.build(), fpga::stratix10_sx2800());
  EXPECT_TRUE(ddr4.is_ok()) << ddr4.status().to_string();
}

TEST(HlsSynthesisTest, BramHungryKernelFailsFitting) {
  // Many distinct burst-coalesced access sites inside a loop blow BRAM,
  // the paper's dominant failure mode (Table I "Not enough BRAM").
  KernelBuilder kb("hungry");
  std::vector<Buf> bufs;
  for (int i = 0; i < 12; ++i) bufs.push_back(kb.buf_f32("b" + std::to_string(i)));
  Val gid = kb.global_id(0);
  kb.for_("i", Val(0), Val(64), [&](Val i) {
    Val acc = kb.let_("acc" /* fresh per build */, Val(0.0f));
    for (int j = 0; j < 11; ++j) {
      kb.assign(acc, acc + kb.load(bufs[static_cast<size_t>(j)], gid + i * 3));
    }
    kb.store(bufs[11], gid + i * 3, acc);
  });
  auto design = hls::synthesize(kb.build(), fpga::stratix10_mx2100());
  ASSERT_FALSE(design.is_ok());
  EXPECT_EQ(design.status().kind(), ErrorKind::kResourceExceeded);
  EXPECT_NE(design.status().message().find("Not enough BRAM"), std::string::npos);
}

TEST(HlsSynthesisTest, SynthesisTimeGrowsWithDesignSize) {
  fpga::AreaReport small{100'000, 300'000, 1'000, 10};
  // Paper Table II O2 row — the successful backprop synthesis took 10.4 h.
  fpga::AreaReport backprop_o2{451'395, 1'051'467, 5'694, 11};
  fpga::AreaReport too_big{1'000'388, 2'158'459, 12'898, 17};  // O0 row
  EXPECT_LT(hls::synthesis_hours(small), hls::synthesis_hours(backprop_o2));
  EXPECT_GT(hls::synthesis_hours(backprop_o2), 8.0);  // §IV-B: up to 10.4 h
  EXPECT_LT(hls::synthesis_hours(backprop_o2), 13.0);
  EXPECT_GT(hls::failed_attempt_hours(too_big, fpga::stratix10_mx2100()), 1.0);
  EXPECT_LE(hls::failed_attempt_hours(too_big, fpga::stratix10_mx2100()), 1.5);
}

TEST(HlsDeviceTest, MatchesSoftGpuResults) {
  // The paper's methodology: identical host + kernel code on both flows.
  KernelBuilder kb("combo");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(gid < n, [&] {
    Val x = kb.let_("x", kb.load(a, gid));
    Val acc = kb.let_("acc", Val(0.0f));
    kb.for_("i", Val(0), Val(8), [&](Val i) { kb.assign(acc, acc + x * to_f32(i)); });
    kb.store(out, gid, acc + vsqrt(vabs(x)));
  });
  kir::Module module;
  module.kernels.push_back(kb.build());

  const uint32_t count = 128;
  Rng rng(21);
  std::vector<uint32_t> input(count);
  for (auto& v : input) v = f2u(rng.next_float(-4.0f, 4.0f));

  auto run_device = [&](vcl::Device& device) {
    EXPECT_TRUE(device.build(module).is_ok());
    auto in_buf = device.upload(input);
    auto out_buf = device.alloc(count * 4);
    std::vector<uint32_t> zeros(count, 0);
    device.write(out_buf, zeros.data(), count * 4, 0);
    auto stats = device.launch("combo", {in_buf, out_buf, static_cast<int32_t>(count)},
                               NDRange::linear(count, 64));
    EXPECT_TRUE(stats.is_ok()) << stats.status().to_string();
    return device.download<uint32_t>(out_buf);
  };

  vcl::VortexDevice vortex(vortex::Config::with(2, 4, 8));
  vcl::HlsDevice hls_device;
  auto vortex_out = run_device(vortex);
  auto hls_out = run_device(hls_device);
  ASSERT_EQ(vortex_out.size(), hls_out.size());
  for (size_t i = 0; i < vortex_out.size(); ++i) {
    EXPECT_EQ(vortex_out[i], hls_out[i]) << "element " << i;
  }
}

TEST(HlsDeviceTest, TimingScalesWithItems) {
  kir::Module module;
  module.kernels.push_back(make_vecadd());
  vcl::HlsDevice device;
  ASSERT_TRUE(device.build(module).is_ok());

  auto time_for = [&](uint32_t n) {
    std::vector<uint32_t> data(n, f2u(1.0f));
    auto a = device.upload(data);
    auto b = device.upload(data);
    auto c = device.alloc(n * 4);
    auto stats = device.launch("vecadd", {a, b, c}, NDRange::linear(n, 64));
    EXPECT_TRUE(stats.is_ok());
    return stats->device_cycles;
  };
  const uint64_t t1 = time_for(1024);
  const uint64_t t4 = time_for(4096);
  EXPECT_GT(t4, t1);
  EXPECT_LT(t4, t1 * 8);  // pipelined, not re-dispatched
}

TEST(HlsDeviceTest, StridedPipelinedLoadSlower) {
  // O2 trades performance for area on non-consecutive patterns (§III-B).
  auto make_strided = [](bool pipelined) {
    KernelBuilder kb("strided");
    Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
    Val gid = kb.global_id(0);
    kb.store(out, gid, kb.load(a, gid * 8));
    kir::Kernel kernel = kb.build();
    if (pipelined) kir::mark_pipelined_loads(kernel);
    return kernel;
  };
  const uint32_t n = 1024;
  std::vector<uint32_t> data(n * 8, f2u(2.0f));
  auto run = [&](bool pipelined) {
    kir::Module module;
    module.kernels.push_back(make_strided(pipelined));
    vcl::HlsDevice device;
    EXPECT_TRUE(device.build(module).is_ok());
    auto a = device.upload(data);
    auto out = device.alloc(n * 4);
    auto stats = device.launch("strided", {a, out}, NDRange::linear(n, 64));
    EXPECT_TRUE(stats.is_ok());
    return stats->device_cycles;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(HlsDeviceTest, BuildInfoRecordsFailures) {
  kir::Module module;
  module.kernels.push_back(make_vecadd());
  KernelBuilder kb("hist");
  Buf keys = kb.buf_i32("keys"), bins = kb.buf_i32("bins");
  kb.atomic_add(bins, kb.load(keys, kb.global_id(0)) & 255, Val(1));
  module.kernels.push_back(kb.build());

  vcl::HlsDevice device;
  auto status = device.build(module);
  EXPECT_FALSE(status.is_ok());
  ASSERT_EQ(device.build_info().size(), 2u);
  EXPECT_TRUE(device.build_info()[0].status.is_ok());
  EXPECT_FALSE(device.build_info()[1].status.is_ok());
  // The good kernel is still launchable.
  std::vector<uint32_t> data(64, f2u(1.0f));
  auto a = device.upload(data);
  auto b = device.upload(data);
  auto c = device.alloc(64 * 4);
  EXPECT_TRUE(device.launch("vecadd", {a, b, c}, NDRange::linear(64, 64)).is_ok());
  EXPECT_FALSE(device.launch("hist", {a, b}, NDRange::linear(64, 64)).is_ok());
}

}  // namespace
}  // namespace fgpu
