// Design-space exploration engine tests (suite/dse.hpp): Spearman rank
// correlation math, grid enumeration, ranking fidelity of the analytical
// model against the cycle-exact Fig. 7 grids, fgpu.dse.v1 determinism
// (jobs and fresh-vs-pooled), funnel invariants, and the keyed device pool.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/log.hpp"
#include "suite/device_pool.hpp"
#include "suite/dse.hpp"
#include "suite/suite.hpp"

namespace fgpu::suite {
namespace {

TEST(SpearmanTest, KnownVectors) {
  // Perfect monotone agreement — any monotone transform of the same order.
  EXPECT_DOUBLE_EQ(spearman_rank({1, 2, 3, 4}, {10, 200, 3000, 40000}), 1.0);
  // Perfect inversion.
  EXPECT_DOUBLE_EQ(spearman_rank({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0);
  // Textbook partial agreement: one adjacent swap among n=4 distinct ranks
  // costs exactly 6 d^2 / (n(n^2-1)) = 0.2.
  EXPECT_NEAR(spearman_rank({1, 2, 3, 4}, {1, 3, 2, 4}), 0.8, 1e-12);
}

TEST(SpearmanTest, TiesUseAverageRanks) {
  // {5, 5} tie in `a` gets average rank 1.5 each; the result must sit
  // strictly between the untied extremes, symmetric in which tied element
  // comes first.
  const double s1 = spearman_rank({5, 5, 7}, {1, 2, 3});
  const double s2 = spearman_rank({5, 5, 7}, {2, 1, 3});
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_GT(s1, 0.0);
  EXPECT_LT(s1, 1.0);
}

TEST(SpearmanTest, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(spearman_rank({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank({1, 2}, {1, 2, 3}), 0.0);  // mismatched
  EXPECT_DOUBLE_EQ(spearman_rank({3, 3, 3}, {1, 2, 3}), 0.0);  // constant
}

TEST(DseGridTest, CanonicalEnumeration) {
  const auto quick = enumerate_grid("quick");
  const auto full = enumerate_grid("full");
  EXPECT_EQ(quick.size(), 216u);
  EXPECT_EQ(full.size(), 12000u);
  EXPECT_TRUE(enumerate_grid("bogus").empty());

  // Canonical order is deterministic: the first quick candidate is the
  // smallest configuration on the default board, and labels are unique.
  EXPECT_EQ(quick.front().label, "C1W2T2:l1d8k:l264k:ddr4@Stratix10-SX2800");
  std::vector<std::string> labels;
  for (const auto& c : quick) labels.push_back(c.label);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(std::unique(labels.begin(), labels.end()), labels.end());
}

// The model's job is ranking, not absolute cycles (analytical.hpp). Gate
// its rank fidelity on the 16-point Fig. 7 grid (4 cores, W x T in
// {2,4,8,16}^2) for both paper kernels. Documented floors (EXPERIMENTS.md
// "Spearman methodology"): vecadd >= 0.75, transpose >= 0.6. A fixed-core
// grid deliberately isolates the warp/thread scheduling axis — the model's
// noisiest dimension, where the simulator shows +/-15% effects with no
// first-order cause — while the DSE's primary pruning axes (cores, DRAM,
// fit) correlate at >= 0.8 on the full 12,000-point grid (the CI-gated
// number). Current values: vecadd 0.78, transpose 0.66.
TEST(DseRankingTest, Fig7GridSpearmanAboveFloor) {
  Log::level() = LogLevel::kOff;
  const uint32_t sizes[4] = {2, 4, 8, 16};
  std::vector<ExactPoint> points;
  for (uint32_t w : sizes) {
    for (uint32_t t : sizes) {
      points.push_back(ExactPoint{vortex::Config::with(4, w, t), &fpga::stratix10_sx2800()});
    }
  }
  ExactGridOptions options;
  options.opt_level = 0;  // the fig7 contract: one fixed instruction stream
  const std::vector<std::string> benchmarks = {"vecadd", "transpose"};
  const auto cells = run_exact_grid(points, benchmarks, options);
  ASSERT_EQ(cells.size(), points.size());

  const double floors[2] = {0.75, 0.6};
  for (size_t b = 0; b < benchmarks.size(); ++b) {
    const auto bench = shared_benchmark(benchmarks[b]);
    ASSERT_TRUE(bench != nullptr);
    const auto profiles = profile_benchmark(*bench);
    ASSERT_TRUE(profiles.is_ok()) << profiles.status().message();
    std::vector<double> predicted, simulated;
    for (size_t i = 0; i < points.size(); ++i) {
      ASSERT_TRUE(cells[i][b].ok) << benchmarks[b] << " point " << i << ": "
                                  << cells[i][b].fail;
      predicted.push_back(predict_benchmark(*profiles, points[i].config).cycles);
      simulated.push_back(static_cast<double>(cells[i][b].cycles));
    }
    EXPECT_GE(spearman_rank(predicted, simulated), floors[b]) << benchmarks[b];
  }
}

// The byte-gate behind BENCH_dse.json: the exported document must not
// depend on worker count or device pooling. Small exact budget keeps this
// CI-cheap; determinism is structural (pre-sized slots, canonical order),
// not budget-dependent.
TEST(DseDeterminismTest, DocumentIdenticalAcrossJobsAndPooling) {
  Log::level() = LogLevel::kOff;
  DseOptions base;
  base.exact_budget = 6;
  base.opt_level = 2;

  const auto render = [](const DseOptions& options) {
    const DseResult result = run_dse(options);
    EXPECT_TRUE(result.error.empty()) << result.error;
    std::ostringstream os;
    write_dse_json(os, options, result);
    return os.str();
  };

  DseOptions jobs1 = base;
  jobs1.jobs = 1;
  DseOptions jobs4 = base;
  jobs4.jobs = 4;
  DseOptions fresh = base;
  fresh.jobs = 2;
  fresh.reuse_devices = false;

  const std::string doc = render(jobs1);
  EXPECT_EQ(doc, render(jobs4));
  EXPECT_EQ(doc, render(fresh));
  EXPECT_NE(doc.find("\"schema\": \"fgpu.dse.v1\""), std::string::npos);
  // Host wall-clock stays quarantined unless opted in.
  EXPECT_EQ(doc.find("\"host\""), std::string::npos);
}

TEST(DseFunnelTest, CountsAndParetoInvariants) {
  Log::level() = LogLevel::kOff;
  DseOptions options;
  options.exact_budget = 8;
  const DseResult r = run_dse(options);
  ASSERT_TRUE(r.error.empty()) << r.error;

  EXPECT_EQ(r.grid_total, 216u);
  EXPECT_EQ(r.candidates.size(), r.grid_total);
  EXPECT_EQ(r.analytical_survivors, r.grid_total - r.infeasible - r.unfit);
  EXPECT_GT(r.analytical_survivors, 0u);
  EXPECT_LE(r.shapes_screened, r.shapes_total);
  EXPECT_LE(r.screen_survivors, r.analytical_survivors);
  EXPECT_LE(r.exact_selected, options.exact_budget);
  EXPECT_LE(r.exact_ok, r.exact_selected);
  EXPECT_GT(r.exact_ok, 0u);

  size_t selected = 0, sim_ok = 0;
  for (const auto& c : r.candidates) {
    if (c.selected) ++selected;
    if (c.sim_ok) ++sim_ok;
    if (c.selected) EXPECT_TRUE(c.fits && c.feasible && c.screen_ok) << c.label;
    if (c.pareto) EXPECT_TRUE(c.sim_ok) << c.label;
  }
  EXPECT_EQ(selected, r.exact_selected);
  EXPECT_EQ(sim_ok, r.exact_ok);

  // Pareto frontier over (simulated_cycles, utilization): no member may be
  // strictly dominated by any sim-ok candidate.
  for (const auto& p : r.candidates) {
    if (!p.pareto) continue;
    for (const auto& q : r.candidates) {
      if (!q.sim_ok) continue;
      const bool dominates = q.simulated_cycles <= p.simulated_cycles &&
                             q.utilization <= p.utilization &&
                             (q.simulated_cycles < p.simulated_cycles ||
                              q.utilization < p.utilization);
      EXPECT_FALSE(dominates) << q.label << " dominates " << p.label;
    }
  }
}

TEST(DevicePoolTest, KeyedRetentionAndCap) {
  DevicePool pool(/*max_identities=*/2);
  // Releasing under an identity pools the set; acquiring the same identity
  // hands it back warm and counts the reuse.
  DeviceSet set;
  set.turbo = std::make_unique<vcl::TurboDevice>(vortex::Config::with(1, 2, 2));
  pool.release("A", std::move(set));
  EXPECT_EQ(pool.identity_count(), 1u);
  EXPECT_EQ(pool.reuse_count(), 0u);

  DeviceSet warm = pool.acquire("A");
  EXPECT_NE(warm.turbo, nullptr);
  EXPECT_EQ(pool.reuse_count(), 1u);
  // A different identity never receives another identity's set.
  EXPECT_EQ(pool.acquire("B").turbo, nullptr);

  // The cap bounds distinct identities: the third identity is dropped.
  pool.release("A", std::move(warm));
  DeviceSet b;
  b.turbo = std::make_unique<vcl::TurboDevice>(vortex::Config::with(1, 2, 2));
  pool.release("B", std::move(b));
  DeviceSet c;
  c.turbo = std::make_unique<vcl::TurboDevice>(vortex::Config::with(1, 2, 2));
  pool.release("C", std::move(c));
  EXPECT_EQ(pool.identity_count(), 2u);
  EXPECT_EQ(pool.acquire("C").turbo, nullptr);
}

}  // namespace
}  // namespace fgpu::suite
