// Analytical performance model tests: profile extraction correctness and
// first-order agreement with the cycle-level simulator (the model's job is
// ranking configurations, not exact cycle counts).
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "kir/build.hpp"
#include "runtime/vortex_device.hpp"
#include "vortex/analytical.hpp"

namespace fgpu::vortex {
namespace {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

kir::Kernel vecadd_kernel() {
  KernelBuilder kb("vecadd");
  Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), c = kb.buf_f32("c");
  Val gid = kb.global_id(0);
  kb.store(c, gid, kb.load(a, gid) + kb.load(b, gid));
  return kb.build();
}

TEST(AnalyticalProfileTest, CountsMatchKernelStructure) {
  const uint32_t n = 256;
  std::vector<uint32_t> a(n, f2u(1.0f)), b(n, f2u(2.0f)), c(n, 0);
  auto profile = profile_kernel(
      vecadd_kernel(),
      {kir::KernelArg::buffer(&a), kir::KernelArg::buffer(&b), kir::KernelArg::buffer(&c)},
      NDRange::linear(n, 64));
  ASSERT_TRUE(profile.is_ok()) << profile.status().to_string();
  EXPECT_EQ(profile->items, n);
  EXPECT_DOUBLE_EQ(profile->loads_per_item, 2.0);
  EXPECT_DOUBLE_EQ(profile->stores_per_item, 1.0);
  EXPECT_DOUBLE_EQ(profile->consecutive_fraction, 1.0);
  EXPECT_GT(profile->ops_per_item, 4.0);   // loads, add, ids, indices
  EXPECT_LT(profile->ops_per_item, 30.0);
  EXPECT_FALSE(profile->uses_barriers);
}

TEST(AnalyticalProfileTest, StridedAccessLowersConsecutiveFraction) {
  KernelBuilder kb("strided");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  kb.store(out, gid, kb.load(a, gid * 8));  // strided load, consecutive store
  const uint32_t n = 64;
  std::vector<uint32_t> data(n * 8, 0), result(n, 0);
  auto profile = profile_kernel(
      kb.build(), {kir::KernelArg::buffer(&data), kir::KernelArg::buffer(&result)},
      NDRange::linear(n, 64));
  ASSERT_TRUE(profile.is_ok());
  EXPECT_NEAR(profile->consecutive_fraction, 0.5, 1e-9);
}

TEST(AnalyticalProfileTest, LoopsMultiplyDynamicCounts) {
  KernelBuilder kb("loopy");
  Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  Val acc = kb.let_("acc", Val(0.0f));
  kb.for_("i", Val(0), Val(16), [&](Val i) { kb.assign(acc, acc + kb.load(a, gid + i)); });
  kb.store(out, gid, acc);
  const uint32_t n = 64;
  std::vector<uint32_t> data(n + 16, f2u(1.0f)), result(n, 0);
  auto profile = profile_kernel(
      kb.build(), {kir::KernelArg::buffer(&data), kir::KernelArg::buffer(&result)},
      NDRange::linear(n, 64));
  ASSERT_TRUE(profile.is_ok());
  EXPECT_DOUBLE_EQ(profile->loads_per_item, 16.0);
}

TEST(AnalyticalPredictTest, MoreThreadsReduceIssueBound) {
  KernelProfile profile;
  profile.items = 65536;
  profile.ops_per_item = 20;
  profile.loads_per_item = 0.5;  // compute-heavy
  const auto narrow = predict_cycles(profile, Config::with(4, 8, 4));
  const auto wide = predict_cycles(profile, Config::with(4, 8, 16));
  EXPECT_LT(wide.issue_bound, narrow.issue_bound);
}

TEST(AnalyticalPredictTest, MemoryBoundKernelSaturates) {
  KernelProfile profile;
  profile.items = 65536;
  profile.ops_per_item = 6;
  profile.loads_per_item = 2;
  profile.stores_per_item = 1;
  profile.consecutive_fraction = 1.0;
  const auto small = predict_cycles(profile, Config::with(4, 4, 4));
  const auto big = predict_cycles(profile, Config::with(4, 16, 16));
  // With the legacy streaming assumption every line fills from DRAM, so the
  // cluster-wide service floor (l2.mshrs / dram.latency) binds — the
  // per-core memory bound still grows with the MSHR contention tax.
  EXPECT_STREQ(big.bottleneck, "dram");
  EXPECT_GT(big.dram_bound, big.memory_bound);
  EXPECT_GT(big.memory_bound, small.memory_bound * 1.05);
}

TEST(AnalyticalPredictTest, FewWarpsExposeLatency) {
  KernelProfile profile;
  profile.items = 16384;
  profile.ops_per_item = 8;
  profile.loads_per_item = 2;
  const auto solo = predict_cycles(profile, Config::with(4, 1, 8));
  const auto many = predict_cycles(profile, Config::with(4, 8, 8));
  EXPECT_GT(solo.latency_bound, many.latency_bound);
}

TEST(AnalyticalVsSimulatorTest, WithinFirstOrderAgreement) {
  Log::level() = LogLevel::kOff;
  const uint32_t n = 4096;
  kir::Module module;
  module.kernels.push_back(vecadd_kernel());

  std::vector<uint32_t> a(n, f2u(1.0f)), b(n, f2u(2.0f)), c(n, 0);
  auto profile = profile_kernel(
      vecadd_kernel(),
      {kir::KernelArg::buffer(&a), kir::KernelArg::buffer(&b), kir::KernelArg::buffer(&c)},
      NDRange::linear(n, 64));
  ASSERT_TRUE(profile.is_ok());

  for (const auto& config : {Config::with(4, 4, 4), Config::with(4, 8, 8)}) {
    vcl::VortexDevice device(config);
    ASSERT_TRUE(device.build(module).is_ok());
    auto ab = device.upload(a);
    auto bb = device.upload(b);
    auto cb = device.alloc(n * 4);
    auto stats = device.launch("vecadd", {ab, bb, cb}, NDRange::linear(n, 64));
    ASSERT_TRUE(stats.is_ok());
    const auto prediction = predict_cycles(*profile, config);
    const double ratio = prediction.cycles / static_cast<double>(stats->device_cycles);
    EXPECT_GT(ratio, 0.25) << config.to_string();
    EXPECT_LT(ratio, 4.0) << config.to_string();
  }
}

}  // namespace
}  // namespace fgpu::vortex
