// End-to-end kernel compiler tests: build KIR kernels, compile them to
// Vortex binaries, run them on the cycle-level simulator through the
// runtime, and compare results against the KIR reference interpreter.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "kir/build.hpp"
#include "kir/interp.hpp"
#include "kir/passes.hpp"
#include "runtime/vortex_device.hpp"

namespace fgpu {
namespace {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Scalar;
using kir::Val;

// Runs `kernel` on both the interpreter and the soft GPU and checks that
// every output buffer matches bit for bit (integer semantics are identical;
// float kernels below only use ops that match exactly).
struct BufferSpec {
  std::vector<uint32_t> host;  // initial contents
  bool check = true;           // compare after execution
};

void run_and_compare(const kir::Kernel& kernel, std::vector<BufferSpec> buffers,
                     std::vector<vcl::Arg> scalars_in_order, const NDRange& ndrange,
                     vortex::Config config = vortex::Config::with(2, 4, 8)) {
  // Reference: interpreter over expanded copy (same lowering both sides).
  kir::Module module;
  module.name = "test";
  module.kernels.push_back(kernel);
  kir::expand_builtins(module.kernels[0]);

  std::vector<std::vector<uint32_t>> ref_data;
  ref_data.reserve(buffers.size());
  for (const auto& spec : buffers) ref_data.push_back(spec.host);

  std::vector<kir::KernelArg> ref_args;
  size_t buffer_cursor = 0, scalar_cursor = 0;
  for (const auto& param : kernel.params) {
    if (param.is_buffer) {
      ref_args.push_back(kir::KernelArg::buffer(&ref_data[buffer_cursor++]));
    } else {
      const vcl::Arg& arg = scalars_in_order[scalar_cursor++];
      if (const auto* iv = std::get_if<int32_t>(&arg)) {
        ref_args.push_back(kir::KernelArg::scalar_i32(*iv));
      } else {
        ref_args.push_back(kir::KernelArg::scalar_f32(std::get<float>(arg)));
      }
    }
  }
  kir::Interpreter interp;
  auto ref_status = interp.run(module.kernels[0], ref_args, ndrange);
  ASSERT_TRUE(ref_status.is_ok()) << ref_status.to_string();

  // Device execution.
  vcl::VortexDevice device(config);
  kir::Module dev_module;
  dev_module.name = "test";
  dev_module.kernels.push_back(kernel);
  auto build = device.build(dev_module);
  ASSERT_TRUE(build.is_ok()) << build.to_string();

  std::vector<vcl::Buffer> dev_buffers;
  for (const auto& spec : buffers) dev_buffers.push_back(device.upload(spec.host));
  std::vector<vcl::Arg> args;
  buffer_cursor = scalar_cursor = 0;
  for (const auto& param : kernel.params) {
    if (param.is_buffer) {
      args.push_back(dev_buffers[buffer_cursor++]);
    } else {
      args.push_back(scalars_in_order[scalar_cursor++]);
    }
  }
  auto stats = device.launch(kernel.name, args, ndrange);
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_GT(stats->device_cycles, 0u);

  for (size_t i = 0; i < buffers.size(); ++i) {
    if (!buffers[i].check) continue;
    auto device_out = device.download<uint32_t>(dev_buffers[i]);
    ASSERT_EQ(device_out.size(), ref_data[i].size());
    for (size_t j = 0; j < device_out.size(); ++j) {
      ASSERT_EQ(device_out[j], ref_data[i][j])
          << kernel.name << ": buffer " << i << " element " << j << " device="
          << u2f(device_out[j]) << " ref=" << u2f(ref_data[i][j]);
    }
  }
}

std::vector<uint32_t> random_floats(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  for (auto& v : out) v = f2u(rng.next_float(-10.0f, 10.0f));
  return out;
}

std::vector<uint32_t> random_ints(size_t n, uint64_t seed, int32_t lo, int32_t hi) {
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  for (auto& v : out) v = static_cast<uint32_t>(rng.next_range(lo, hi));
  return out;
}

TEST(CodegenTest, VecAdd) {
  KernelBuilder kb("vecadd");
  Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), c = kb.buf_f32("c");
  Val n = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(gid < n, [&] { kb.store(c, gid, kb.load(a, gid) + kb.load(b, gid)); });
  const uint32_t count = 257;  // deliberately not a multiple of the launch
  run_and_compare(kb.build(),
                  {{random_floats(count, 1)}, {random_floats(count, 2)},
                   {std::vector<uint32_t>(count, 0)}},
                  {static_cast<int32_t>(count)}, NDRange::linear(320, 64));
}

TEST(CodegenTest, IntegerOps) {
  KernelBuilder kb("intops");
  Buf a = kb.buf_i32("a"), b = kb.buf_i32("b"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  Val x = kb.let_("x", kb.load(a, gid));
  Val y = kb.let_("y", kb.load(b, gid));
  // A pile of integer operators, combined so every lane output is distinct.
  Val r = kb.let_("r", (x + y) ^ (x - y));
  kb.assign(r, r + (x * y));
  kb.assign(r, r + x / (y | 1));
  kb.assign(r, r + x % (y | 1));
  kb.assign(r, r + (x << (y & 7)));
  kb.assign(r, r + (x >> 3));
  kb.assign(r, r + vmin(x, y) * 3 + vmax(x, y));
  kb.assign(r, r + vselect(x < y, x & y, x | y));
  kb.assign(r, r + vabs(x - y) + (-y));
  kb.assign(r, r + (x <= y) + (x > y) * 2 + (x >= y) * 4 + (x == y) * 8 + (x != y) * 16);
  kb.assign(r, r + ((x > 0 && y > 0) || (x < -5)));
  kb.assign(r, r + !x);
  kb.store(out, gid, r);
  const uint32_t n = 128;
  run_and_compare(kb.build(),
                  {{random_ints(n, 3, -1000, 1000)}, {random_ints(n, 4, -50, 50)},
                   {std::vector<uint32_t>(n, 0)}},
                  {}, NDRange::linear(n, 32));
}

TEST(CodegenTest, DivergentIfElse) {
  KernelBuilder kb("diverge");
  Buf data = kb.buf_i32("data"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(data, gid));
  kb.if_(
      (v & 1) == 1,
      [&] {
        Val t = kb.let_("t", v * 3 + 1);
        kb.store(out, gid, t);
      },
      [&] { kb.store(out, gid, v / 2); });
  const uint32_t n = 128;
  run_and_compare(kb.build(), {{random_ints(n, 5, 0, 1 << 20)}, {std::vector<uint32_t>(n, 0)}},
                  {}, NDRange::linear(n, 64));
}

TEST(CodegenTest, NestedDivergence) {
  KernelBuilder kb("nested");
  Buf data = kb.buf_i32("data"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(data, gid));
  kb.if_(
      v > 0,
      [&] {
        kb.if_((v & 1) == 0, [&] { kb.store(out, gid, v * 10); },
               [&] { kb.store(out, gid, v * 100); });
      },
      [&] {
        kb.if_(v < -10, [&] { kb.store(out, gid, 0 - v); }, [&] { kb.store(out, gid, 7); });
      });
  const uint32_t n = 192;
  run_and_compare(kb.build(), {{random_ints(n, 6, -100, 100)}, {std::vector<uint32_t>(n, 0)}},
                  {}, NDRange::linear(n, 64));
}

TEST(CodegenTest, DivergentLoopTripCounts) {
  // Each item loops a data-dependent number of times (PRED path).
  KernelBuilder kb("divloop");
  Buf trips = kb.buf_i32("trips"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  Val n = kb.let_("n", kb.load(trips, gid));
  Val acc = kb.let_("acc", Val(0));
  kb.for_("i", Val(0), n, [&](Val i) { kb.assign(acc, acc + i * i); });
  kb.store(out, gid, acc);
  const uint32_t count = 96;
  run_and_compare(kb.build(), {{random_ints(count, 7, 0, 24)}, {std::vector<uint32_t>(count, 0)}},
                  {}, NDRange::linear(count, 32));
}

TEST(CodegenTest, WhileLoopCollatz) {
  KernelBuilder kb("collatz");
  Buf data = kb.buf_i32("data"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(data, gid));
  Val steps = kb.let_("steps", Val(0));
  kb.while_(v > 1 && steps < 64, [&] {
    kb.if_((v & 1) == 0, [&] { kb.assign(v, v / 2); }, [&] { kb.assign(v, v * 3 + 1); });
    kb.assign(steps, steps + 1);
  });
  kb.store(out, gid, steps);
  const uint32_t n = 64;
  run_and_compare(kb.build(), {{random_ints(n, 8, 1, 200)}, {std::vector<uint32_t>(n, 0)}}, {},
                  NDRange::linear(n, 32));
}

TEST(CodegenTest, UniformLoopMatvecRow) {
  // Uniform inner loop over a scalar bound: dot product per row.
  KernelBuilder kb("matvec");
  Buf m = kb.buf_f32("m"), x = kb.buf_f32("x"), y = kb.buf_f32("y");
  Val cols = kb.param_i32("cols");
  Val row = kb.global_id(0);
  Val acc = kb.let_("acc", Val(0.0f));
  kb.for_("j", Val(0), cols, [&](Val j) {
    kb.assign(acc, acc + kb.load(m, row * cols + j) * kb.load(x, j));
  });
  kb.store(y, row, acc);
  const uint32_t rows = 32, colc = 17;
  run_and_compare(kb.build(),
                  {{random_floats(rows * colc, 9)}, {random_floats(colc, 10)},
                   {std::vector<uint32_t>(rows, 0)}},
                  {static_cast<int32_t>(colc)}, NDRange::linear(rows, 16));
}

TEST(CodegenTest, Transpose2D) {
  KernelBuilder kb("transpose");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Val w = kb.param_i32("w");
  Val gx = kb.global_id(0), gy = kb.global_id(1);
  kb.store(out, gx * w + gy, kb.load(in, gy * w + gx));
  const uint32_t n = 32;
  run_and_compare(kb.build(),
                  {{random_floats(n * n, 11)}, {std::vector<uint32_t>(n * n, 0)}},
                  {static_cast<int32_t>(n)}, NDRange::grid2d(n, n, 8, 8));
}

TEST(CodegenTest, BarrierLocalReduction) {
  // Classic work-group reduction through __local memory with barriers.
  KernelBuilder kb("reduce");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Buf tile = kb.local_f32("tile", 64);
  Val lid = kb.local_id(0), grp = kb.group_id(0);
  kb.store(tile, lid, kb.load(in, kb.global_id(0)));
  kb.barrier();
  Val stride = kb.let_("stride", Val(32));
  kb.while_(stride > 0, [&] {
    kb.if_(lid < stride,
           [&] { kb.store(tile, lid, kb.load(tile, lid) + kb.load(tile, lid + stride)); });
    kb.barrier();
    kb.assign(stride, stride >> 1);
  });
  kb.if_(lid == 0, [&] { kb.store(out, grp, kb.load(tile, 0)); });
  const uint32_t n = 256;
  run_and_compare(kb.build(),
                  {{random_floats(n, 12)}, {std::vector<uint32_t>(n / 64, 0)}}, {},
                  NDRange::linear(n, 64), vortex::Config::with(2, 8, 8));
}

TEST(CodegenTest, AtomicHistogram) {
  KernelBuilder kb("hist");
  Buf keys = kb.buf_i32("keys"), bins = kb.buf_i32("bins");
  Val gid = kb.global_id(0);
  kb.atomic_add(bins, kb.load(keys, gid) & 15, Val(1));
  const uint32_t n = 256;
  run_and_compare(kb.build(),
                  {{random_ints(n, 13, 0, 1 << 20)}, {std::vector<uint32_t>(16, 0)}}, {},
                  NDRange::linear(n, 64));
}

TEST(CodegenTest, AtomicMinMaxExtremes) {
  KernelBuilder kb("minmax");
  Buf data = kb.buf_i32("data"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(data, gid));
  kb.atomic_min(out, Val(0), v);
  kb.atomic_max(out, Val(1), v);
  const uint32_t n = 128;
  std::vector<uint32_t> init = {0x7FFFFFFFu, 0x80000000u};
  run_and_compare(kb.build(), {{random_ints(n, 14, -10000, 10000)}, {init}}, {},
                  NDRange::linear(n, 64));
}

TEST(CodegenTest, MathBuiltins) {
  // exp/log/sqrt/floor expand to identical KIR for interp and device,
  // so results must match bit for bit.
  KernelBuilder kb("math");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  Val x = kb.let_("x", kb.load(in, gid));
  Val pos = kb.let_("pos", vabs(x) + 0.125f);
  kb.store(out, gid * 4 + 0, vexp(x * 0.1f));
  kb.store(out, gid * 4 + 1, vlog(pos));
  kb.store(out, gid * 4 + 2, vsqrt(pos));
  kb.store(out, gid * 4 + 3, vfloor(x));
  const uint32_t n = 64;
  run_and_compare(kb.build(),
                  {{random_floats(n, 15)}, {std::vector<uint32_t>(n * 4, 0)}}, {},
                  NDRange::linear(n, 32));
}

TEST(CodegenTest, MathBuiltinsAccuracy) {
  // The polynomial expansions should track libm within ~1e-5 relative.
  KernelBuilder kb("mathacc");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Val gid = kb.global_id(0);
  Val x = kb.let_("x", kb.load(in, gid));
  kb.store(out, gid * 2 + 0, vexp(x));
  kb.store(out, gid * 2 + 1, vlog(vabs(x) + 0.01f));
  kir::Kernel kernel = kb.build();
  kir::expand_builtins(kernel);

  const uint32_t n = 128;
  Rng rng(99);
  std::vector<uint32_t> input(n);
  for (auto& v : input) v = f2u(rng.next_float(-8.0f, 8.0f));
  std::vector<uint32_t> result(n * 2, 0);
  std::vector<kir::KernelArg> args = {kir::KernelArg::buffer(&input),
                                      kir::KernelArg::buffer(&result)};
  kir::Interpreter interp;
  ASSERT_TRUE(interp.run(kernel, args, NDRange::linear(n, 32)).is_ok());
  for (uint32_t i = 0; i < n; ++i) {
    const float x = u2f(input[i]);
    const float got_exp = u2f(result[i * 2]);
    const float got_log = u2f(result[i * 2 + 1]);
    EXPECT_NEAR(got_exp, std::exp(x), std::abs(std::exp(x)) * 2e-5 + 1e-7) << "x=" << x;
    EXPECT_NEAR(got_log, std::log(std::fabs(x) + 0.01f),
                std::abs(std::log(std::fabs(x) + 0.01f)) * 2e-5 + 1e-6)
        << "x=" << x;
  }
}

TEST(CodegenTest, RegisterPressureSpills) {
  // 40 live values force spilling; results must still be exact.
  KernelBuilder kb("spill");
  Buf in = kb.buf_i32("in"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  std::vector<Val> vals;
  for (int i = 0; i < 40; ++i) {
    vals.push_back(kb.let_("v" + std::to_string(i), kb.load(in, gid) * (i + 1) + i));
  }
  Val acc = kb.let_("acc", Val(0));
  for (int i = 0; i < 40; ++i) kb.assign(acc, acc + vals[static_cast<size_t>(i)]);
  kb.store(out, gid, acc);
  const uint32_t n = 64;

  // Confirm it actually spilled.
  auto compiled = codegen::compile_kernel(kb.build());
  ASSERT_TRUE(compiled.is_ok()) << compiled.status().to_string();
  EXPECT_GT(compiled->spill_slots, 0);

  run_and_compare(kb.build(), {{random_ints(n, 16, -100, 100)}, {std::vector<uint32_t>(n, 0)}},
                  {}, NDRange::linear(n, 32));
}

TEST(CodegenTest, PrintfReachesConsole) {
  KernelBuilder kb("printer");
  Val gid = kb.global_id(0);
  kb.print("item %d\n", {gid});
  kir::Module module;
  module.kernels.push_back(kb.build());
  vcl::VortexDevice device(vortex::Config::with(1, 1, 2));
  ASSERT_TRUE(device.build(module).is_ok());
  auto stats = device.launch("printer", {}, NDRange::linear(4, 2));
  ASSERT_TRUE(stats.is_ok()) << stats.status().to_string();
  EXPECT_EQ(device.console().size(), 4u);
  // Order across warps is scheduling-dependent; check the set.
  std::vector<std::string> lines = device.console();
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines[0], "item 0");
  EXPECT_EQ(lines[3], "item 3");
}

TEST(CodegenTest, ScalarFloatParam) {
  KernelBuilder kb("saxpy");
  Buf x = kb.buf_f32("x"), y = kb.buf_f32("y");
  Val alpha = kb.param_f32("alpha");
  Val gid = kb.global_id(0);
  kb.store(y, gid, alpha * kb.load(x, gid) + kb.load(y, gid));
  const uint32_t n = 128;
  run_and_compare(kb.build(), {{random_floats(n, 17)}, {random_floats(n, 18)}}, {2.5f},
                  NDRange::linear(n, 64));
}

// The same kernel must produce identical results on every hardware shape —
// the property behind the paper's Fig. 7 sweep (only cycles may change).
class CodegenConfigSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CodegenConfigSweep, SameResultAnyConfig) {
  auto [cores, warps, threads] = GetParam();
  KernelBuilder kb("sweep");
  Buf a = kb.buf_i32("a"), out = kb.buf_i32("out");
  Val gid = kb.global_id(0);
  Val v = kb.let_("v", kb.load(a, gid));
  kb.if_((v & 3) == 0, [&] { kb.assign(v, v * 2); });
  kb.for_("i", Val(0), v & 7, [&](Val i) { kb.assign(v, v + i); });
  kb.store(out, gid, v);
  const uint32_t n = 192;
  run_and_compare(kb.build(), {{random_ints(n, 19, 0, 4096)}, {std::vector<uint32_t>(n, 0)}},
                  {}, NDRange::linear(n, 32),
                  vortex::Config::with(static_cast<uint32_t>(cores), static_cast<uint32_t>(warps),
                                       static_cast<uint32_t>(threads)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, CodegenConfigSweep,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 2, 4},
                                           std::tuple{1, 4, 8}, std::tuple{2, 2, 2},
                                           std::tuple{2, 8, 8}, std::tuple{4, 4, 4},
                                           std::tuple{4, 8, 16}, std::tuple{2, 16, 16}));

}  // namespace
}  // namespace fgpu
