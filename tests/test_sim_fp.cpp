// Floating-point and pipeline-behaviour tests at the ISA level: IEEE corner
// cases (NaN handling, conversion clamping, sign injection), fused
// multiply-add variants, CSR counters, memory coalescing efficiency, and
// cache-configuration effects on timing.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bits.hpp"
#include "mem/memory.hpp"
#include "vasm/assembler.hpp"
#include "vortex/cluster.hpp"

namespace fgpu::vortex {
namespace {

constexpr uint32_t kOut = arch::kHeapBase;

struct SimResult {
  ClusterStats stats;
  mem::MainMemory mem;
};

SimResult run_asm(const std::string& source, Config config = Config::with(1, 2, 4)) {
  auto prog = vasm::assemble(source);
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
  SimResult result;
  result.mem.write(prog->base, prog->words.data(), prog->size_bytes());
  Cluster cluster(config, result.mem);
  auto stats = cluster.run(prog->entry());
  EXPECT_TRUE(stats.is_ok()) << stats.status().to_string();
  if (stats.is_ok()) result.stats = *stats;
  return result;
}

// Loads two float constants into f0/f1 and stores op results.
std::string fp_binary_prog(float a, float b, const std::string& body) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"(
    li t0, %d
    fmv.w.x f0, t0
    li t0, %d
    fmv.w.x f1, t0
    li t5, 0x20000000
    %s
    tmc zero
  )",
                static_cast<int32_t>(f2u(a)), static_cast<int32_t>(f2u(b)), body.c_str());
  return buf;
}

TEST(SimFpTest, MinMaxIgnoreNaN) {
  const float nan = std::nanf("");
  auto r = run_asm(fp_binary_prog(nan, 3.0f, R"(
    fmin.s f2, f0, f1
    fmax.s f3, f0, f1
    fsw f2, 0(t5)
    fsw f3, 4(t5))"));
  EXPECT_EQ(u2f(r.mem.load32(kOut)), 3.0f);      // fmin(NaN, 3) = 3
  EXPECT_EQ(u2f(r.mem.load32(kOut + 4)), 3.0f);  // fmax(NaN, 3) = 3
}

TEST(SimFpTest, ComparisonsWithNaNAreFalse) {
  const float nan = std::nanf("");
  auto r = run_asm(fp_binary_prog(nan, 1.0f, R"(
    feq.s t1, f0, f1
    flt.s t2, f0, f1
    fle.s t3, f0, f0
    sw t1, 0(t5)
    sw t2, 4(t5)
    sw t3, 8(t5))"));
  EXPECT_EQ(r.mem.load32(kOut), 0u);
  EXPECT_EQ(r.mem.load32(kOut + 4), 0u);
  EXPECT_EQ(r.mem.load32(kOut + 8), 0u);
}

TEST(SimFpTest, SignInjection) {
  auto r = run_asm(fp_binary_prog(2.5f, -1.0f, R"(
    fsgnj.s f2, f0, f1
    fsgnjn.s f3, f0, f1
    fsgnjx.s f4, f1, f1
    fsw f2, 0(t5)
    fsw f3, 4(t5)
    fsw f4, 8(t5))"));
  EXPECT_EQ(u2f(r.mem.load32(kOut)), -2.5f);      // take sign of f1
  EXPECT_EQ(u2f(r.mem.load32(kOut + 4)), 2.5f);   // inverted sign
  EXPECT_EQ(u2f(r.mem.load32(kOut + 8)), 1.0f);   // |f1| via x-or trick
}

TEST(SimFpTest, ConversionClamping) {
  auto r = run_asm(fp_binary_prog(3.0e9f, -7.6f, R"(
    fcvt.w.s t1, f0
    fcvt.w.s t2, f1
    fcvt.wu.s t3, f1
    sw t1, 0(t5)
    sw t2, 4(t5)
    sw t3, 8(t5))"));
  EXPECT_EQ(r.mem.load32(kOut), 0x7FFFFFFFu);                    // clamp to INT_MAX
  EXPECT_EQ(static_cast<int32_t>(r.mem.load32(kOut + 4)), -7);   // truncate toward zero
  EXPECT_EQ(r.mem.load32(kOut + 8), 0u);                         // unsigned clamp at 0
}

TEST(SimFpTest, IntToFloatRoundTrip) {
  auto r = run_asm(R"(
    li t0, -12345
    fcvt.s.w f0, t0
    li t1, 3000000000
    fcvt.s.wu f1, t1
    li t5, 0x20000000
    fsw f0, 0(t5)
    fsw f1, 4(t5)
    tmc zero
  )");
  EXPECT_EQ(u2f(r.mem.load32(kOut)), -12345.0f);
  EXPECT_EQ(u2f(r.mem.load32(kOut + 4)), 3000000000.0f);
}

TEST(SimFpTest, FusedMultiplyAddFamily) {
  auto r = run_asm(fp_binary_prog(2.0f, 3.0f, R"(
    li t0, 0x40800000
    fmv.w.x f2, t0
    fmadd.s f3, f0, f1, f2
    fmsub.s f4, f0, f1, f2
    fnmsub.s f5, f0, f1, f2
    fnmadd.s f6, f0, f1, f2
    fsw f3, 0(t5)
    fsw f4, 4(t5)
    fsw f5, 8(t5)
    fsw f6, 12(t5))"));
  EXPECT_EQ(u2f(r.mem.load32(kOut)), 10.0f);        // 2*3+4
  EXPECT_EQ(u2f(r.mem.load32(kOut + 4)), 2.0f);     // 2*3-4
  EXPECT_EQ(u2f(r.mem.load32(kOut + 8)), -2.0f);    // -(2*3)+4
  EXPECT_EQ(u2f(r.mem.load32(kOut + 12)), -10.0f);  // -(2*3)-4
}

TEST(SimFpTest, FclassCategories) {
  auto r = run_asm(R"(
    li t0, 0x7F800000
    fmv.w.x f0, t0
    fclass.s t1, f0          # +inf -> bit 7
    li t0, 0xFF800000
    fmv.w.x f0, t0
    fclass.s t2, f0          # -inf -> bit 0
    li t0, 0x7FC00000
    fmv.w.x f0, t0
    fclass.s t3, f0          # NaN -> bit 9
    li t0, 0x80000000
    fmv.w.x f0, t0
    fclass.s t4, f0          # -0 -> bit 3
    li t5, 0x20000000
    sw t1, 0(t5)
    sw t2, 4(t5)
    sw t3, 8(t5)
    sw t4, 12(t5)
    tmc zero
  )");
  EXPECT_EQ(r.mem.load32(kOut), 1u << 7);
  EXPECT_EQ(r.mem.load32(kOut + 4), 1u << 0);
  EXPECT_EQ(r.mem.load32(kOut + 8), 1u << 9);
  EXPECT_EQ(r.mem.load32(kOut + 12), 1u << 3);
}

TEST(SimFpTest, DivisionInfinityAndZero) {
  auto r = run_asm(fp_binary_prog(1.0f, 0.0f, R"(
    fdiv.s f2, f0, f1
    fdiv.s f3, f1, f0
    fsw f2, 0(t5)
    fsw f3, 4(t5))"));
  EXPECT_TRUE(std::isinf(u2f(r.mem.load32(kOut))));
  EXPECT_EQ(u2f(r.mem.load32(kOut + 4)), 0.0f);
}

TEST(SimBehaviorTest, CycleCsrIsMonotonic) {
  auto r = run_asm(R"(
    csrr t0, 0xC00
    addi t2, zero, 0
  spin:
    addi t2, t2, 1
    addi t3, zero, 10
    bne t2, t3, spin
    csrr t1, 0xC00
    sltu t4, t0, t1
    li t5, 0x20000000
    sw t4, 0(t5)
    tmc zero
  )", Config::with(1, 1, 1));
  EXPECT_EQ(r.mem.load32(kOut), 1u);  // later read saw a larger cycle count
}

TEST(SimBehaviorTest, CoalescedAccessUsesFewerLineFills) {
  // 8 lanes loading consecutive words touch 2 sixteen-byte lines; strided
  // lanes touch 8 distinct lines -> 4x the DRAM fills.
  const char* consecutive = R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0
    slli t2, t1, 2
    li t3, 0x20010000
    add t3, t3, t2
    lw t4, 0(t3)
    tmc zero
  )";
  const char* strided = R"(
    li t0, 255
    tmc t0
    csrr t1, 0xCC0
    slli t2, t1, 6
    li t3, 0x20010000
    add t3, t3, t2
    lw t4, 0(t3)
    tmc zero
  )";
  auto rc = run_asm(consecutive, Config::with(1, 1, 8));
  auto rs = run_asm(strided, Config::with(1, 1, 8));
  // Both programs fetch the same code lines; the difference is data fills:
  // strided touches 8 lines, consecutive 2.
  EXPECT_EQ(rs.stats.dram.reads - rc.stats.dram.reads, 6u);
  EXPECT_LT(rc.stats.perf.cycles, rs.stats.perf.cycles);
}

TEST(SimBehaviorTest, PerfectIcacheRemovesFetchStalls) {
  const char* loop = R"(
    li t0, 200
  spin:
    addi t0, t0, -1
    bne t0, zero, spin
    tmc zero
  )";
  auto real = run_asm(loop, Config::with(1, 1, 1));
  Config perfect = Config::with(1, 1, 1);
  perfect.perfect_icache = true;
  auto ideal = run_asm(loop, perfect);
  EXPECT_LT(ideal.stats.perf.cycles, real.stats.perf.cycles);
  EXPECT_EQ(ideal.stats.l1i.reads, 0u);  // no icache traffic at all
}

TEST(SimBehaviorTest, MoreWarpsHideLoadLatency) {
  // Dependent-load loop per warp: 1 warp exposes the full round trip,
  // 4 warps interleave.
  const char* prog = R"(
    li t0, 0x20020000
    csrr t1, 0xCC1
    slli t2, t1, 8
    add t0, t0, t2       # per-warp region
    li t3, 16
  loop:
    lw t4, 0(t0)
    addi t4, t4, 1
    sw t4, 0(t0)
    addi t0, t0, 64
    addi t3, t3, -1
    bne t3, zero, loop
    tmc zero
  )";
  auto one = run_asm(prog, Config::with(1, 1, 1));
  auto four = run_asm(prog, Config::with(1, 4, 1));
  // Four warps do 4x the work in far less than 4x the time.
  EXPECT_LT(four.stats.perf.cycles, one.stats.perf.cycles * 5 / 2);
}

TEST(SimBehaviorTest, InstretCsrCountsRetiredInstructions) {
  auto r = run_asm(R"(
    csrr t0, 0xC02
    addi t1, zero, 1
    addi t1, t1, 1
    addi t1, t1, 1
    csrr t2, 0xC02
    sub t3, t2, t0
    li t5, 0x20000000
    sw t3, 0(t5)
    tmc zero
  )", Config::with(1, 1, 1));
  EXPECT_EQ(r.mem.load32(kOut), 4u);  // 3 addis + the first csrr retire between reads
}

}  // namespace
}  // namespace fgpu::vortex
