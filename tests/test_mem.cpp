// Memory-hierarchy tests: functional main memory, cache hit/miss/MSHR
// behaviour, writebacks, DRAM latency/bandwidth, and interconnect routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/interconnect.hpp"
#include "mem/memory.hpp"
#include "mem/memprof.hpp"

namespace fgpu::mem {
namespace {

TEST(MainMemoryTest, ReadWriteRoundTrip) {
  MainMemory memory;
  memory.store32(0x1000, 0xDEADBEEF);
  EXPECT_EQ(memory.load32(0x1000), 0xDEADBEEFu);
  EXPECT_EQ(memory.load16(0x1000), 0xBEEFu);
  EXPECT_EQ(memory.load8(0x1003), 0xDEu);
  memory.store8(0x1001, 0x42);
  EXPECT_EQ(memory.load32(0x1000), 0xDEAD42EFu);
}

TEST(MainMemoryTest, UntouchedMemoryReadsZero) {
  MainMemory memory;
  EXPECT_EQ(memory.load32(0x7FFF0000), 0u);
}

TEST(MainMemoryTest, CrossPageCopy) {
  MainMemory memory;
  std::vector<uint8_t> data(MainMemory::kPageSize + 128);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i * 7);
  const uint32_t base = MainMemory::kPageSize - 64;  // straddles a page boundary
  memory.write(base, data.data(), static_cast<uint32_t>(data.size()));
  std::vector<uint8_t> out(data.size());
  memory.read(base, out.data(), static_cast<uint32_t>(out.size()));
  EXPECT_EQ(data, out);
}

TEST(MainMemoryTest, FillAndClear) {
  MainMemory memory;
  memory.fill(0x2000, 0xAB, 256);
  EXPECT_EQ(memory.load8(0x2000), 0xABu);
  EXPECT_EQ(memory.load8(0x20FF), 0xABu);
  EXPECT_EQ(memory.load8(0x2100), 0u);
  memory.clear();
  EXPECT_EQ(memory.load8(0x2000), 0u);
}

// Harness that drives a cache over a DRAM and collects responses.
struct Harness {
  DramModel dram{DramConfig::ddr4()};
  Cache cache;
  std::vector<uint64_t> responses;
  uint64_t cycle = 0;

  explicit Harness(CacheConfig config = CacheConfig{}) : cache(config, &dram) {
    cache.set_response_handler([this](uint64_t id, bool) { responses.push_back(id); });
  }

  void tick(int n = 1) {
    for (int i = 0; i < n; ++i) {
      dram.tick(cycle);
      cache.tick(cycle);
      ++cycle;
    }
  }

  // Sends when accepted; returns cycles waited.
  int send(uint64_t id, uint32_t addr, bool write = false) {
    int waited = 0;
    while (!cache.can_accept()) {
      tick();
      ++waited;
      EXPECT_LT(waited, 10000) << "cache never accepted";
    }
    cache.send(MemRequest{.id = id, .addr = addr, .is_write = write});
    return waited;
  }

  void drain_until(size_t count, int limit = 5000) {
    int guard = 0;
    while (responses.size() < count && guard++ < limit) tick();
    ASSERT_GE(responses.size(), count) << "timed out draining responses";
  }
};

TEST(CacheTest, MissThenHitLatency) {
  Harness h;
  h.send(1, 0x1000);
  h.drain_until(1);
  const uint64_t miss_done = h.cycle;
  EXPECT_GT(miss_done, DramConfig::ddr4().latency);  // went to DRAM
  h.send(2, 0x1004);  // same line
  h.drain_until(2);
  EXPECT_LE(h.cycle - miss_done, h.cache.config().hit_latency + 3);
  EXPECT_EQ(h.cache.stats().hits, 1u);
  EXPECT_EQ(h.cache.stats().misses, 1u);
}

TEST(CacheTest, MshrMergesSameLine) {
  Harness h;
  h.send(1, 0x2000);
  h.send(2, 0x2008);  // same 16B line, still outstanding
  h.drain_until(2);
  EXPECT_EQ(h.cache.stats().mshr_merges, 1u);
  EXPECT_EQ(h.dram.stats().reads, 1u);  // one line fill serves both
}

TEST(CacheTest, DistinctLinesUseDistinctFills) {
  Harness h;
  h.send(1, 0x3000);
  h.send(2, 0x3010);
  h.send(3, 0x3020);
  h.drain_until(3);
  EXPECT_EQ(h.dram.stats().reads, 3u);
}

TEST(CacheTest, CapacityEvictionAndWriteback) {
  CacheConfig config;
  config.size_bytes = 256;  // 16 lines of 16B
  config.ways = 2;
  config.mshrs = 4;
  Harness h(config);
  // Dirty a line, then stream enough distinct lines through its set to
  // evict it; the dirty eviction must produce a DRAM write.
  h.send(1, 0x0, /*write=*/true);
  h.drain_until(1);
  const uint32_t sets = config.num_sets();
  for (uint64_t i = 1; i <= 4; ++i) {
    h.send(1 + i, static_cast<uint32_t>(i * sets * 16));  // same set as 0x0
    h.drain_until(1 + i);
  }
  EXPECT_GT(h.cache.stats().evictions, 0u);
  EXPECT_GT(h.cache.stats().writebacks, 0u);
  EXPECT_GT(h.dram.stats().writes, 0u);
}

TEST(CacheTest, EvictedLineMissesAgain) {
  CacheConfig config;
  config.size_bytes = 256;
  config.ways = 2;
  Harness h(config);
  h.send(1, 0x0);
  h.drain_until(1);
  const uint32_t sets = config.num_sets();
  for (uint64_t i = 1; i <= 3; ++i) {
    h.send(1 + i, static_cast<uint32_t>(i * sets * 16));
    h.drain_until(1 + i);
  }
  const uint64_t misses_before = h.cache.stats().misses;
  h.send(10, 0x0);  // must have been evicted (2 ways, 3 conflicting lines)
  h.drain_until(5);
  EXPECT_EQ(h.cache.stats().misses, misses_before + 1);
}

TEST(CacheTest, FlushInvalidatesEverything) {
  Harness h;
  h.send(1, 0x4000);
  h.drain_until(1);
  h.cache.flush();
  h.send(2, 0x4000);
  h.drain_until(2);
  EXPECT_EQ(h.cache.stats().misses, 2u);
}

TEST(CacheTest, BackPressureWhenMshrsFull) {
  CacheConfig config;
  config.mshrs = 2;
  Harness h(config);
  ASSERT_TRUE(h.cache.can_accept());
  h.cache.send(MemRequest{.id = 1, .addr = 0x5000});
  h.cache.send(MemRequest{.id = 2, .addr = 0x6000});
  // Port limit: one accept per cycle already consumed... tick to refresh.
  h.tick();
  EXPECT_FALSE(h.cache.can_accept());  // both MSHRs pending
  h.drain_until(2);
  h.tick();
  EXPECT_TRUE(h.cache.can_accept());
}

TEST(CacheTest, PortLimitOneAcceptPerCycle) {
  Harness h;
  h.tick();
  ASSERT_TRUE(h.cache.can_accept());
  h.cache.send(MemRequest{.id = 1, .addr = 0x100});
  EXPECT_FALSE(h.cache.can_accept());  // port consumed this cycle
  h.tick();
  EXPECT_TRUE(h.cache.can_accept());
}

TEST(DramTest, FixedLatency) {
  DramModel dram(DramConfig{"test", 50, 1, 1, 8});
  uint64_t done_cycle = 0;
  dram.set_response_handler([&](uint64_t, bool) { done_cycle = 1; });
  dram.tick(0);
  dram.send(MemRequest{.id = 1, .addr = 0});
  uint64_t cycle = 0;
  while (done_cycle == 0 && cycle < 200) dram.tick(++cycle);
  EXPECT_GE(cycle, 50u);
  EXPECT_LE(cycle, 60u);
}

TEST(DramTest, BandwidthOneLinePerCyclePerChannel) {
  DramModel dram(DramConfig{"test", 10, 1, 1, 32});
  int responses = 0;
  dram.set_response_handler([&](uint64_t, bool) { ++responses; });
  uint64_t cycle = 0;
  int sent = 0;
  while (responses < 16 && cycle < 500) {
    dram.tick(cycle);
    if (sent < 16 && dram.can_accept()) {
      dram.send(MemRequest{.id = static_cast<uint64_t>(sent), .addr = 0});
      ++sent;
    }
    ++cycle;
  }
  // 16 responses at 1/cycle after the initial latency.
  EXPECT_GE(cycle, 16u + 10u);
  EXPECT_EQ(responses, 16);
}

TEST(DramTest, Hbm2HasMoreChannels) {
  EXPECT_GT(DramConfig::hbm2().channels, DramConfig::ddr4().channels);
  EXPECT_LT(DramConfig::hbm2().latency, DramConfig::ddr4().latency);
  DramModel dram(DramConfig::hbm2());
  EXPECT_DOUBLE_EQ(dram.peak_lines_per_cycle(), 8.0);
}

TEST(InterconnectTest, RoutesResponsesToTheRightPort) {
  DramModel dram(DramConfig{"test", 5, 1, 4, 32});
  Interconnect noc(&dram);
  MemPort* port_a = noc.new_port();
  MemPort* port_b = noc.new_port();
  std::vector<uint64_t> got_a, got_b;
  port_a->set_response_handler([&](uint64_t id, bool) { got_a.push_back(id); });
  port_b->set_response_handler([&](uint64_t id, bool) { got_b.push_back(id); });
  dram.tick(0);
  port_a->send(MemRequest{.id = 100, .addr = 0});
  port_b->send(MemRequest{.id = 100, .addr = 16});  // same requester id, different port
  port_a->send(MemRequest{.id = 101, .addr = 32});
  for (uint64_t cycle = 1; cycle < 40; ++cycle) dram.tick(cycle);
  ASSERT_EQ(got_a.size(), 2u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a[0], 100u);
  EXPECT_EQ(got_a[1], 101u);
  EXPECT_EQ(got_b[0], 100u);
}

// Parameterized property: a burst of reads through any cache geometry
// always produces exactly one response per request and never loses one.
class CacheGeometry : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CacheGeometry, EveryRequestGetsExactlyOneResponse) {
  auto [size_kb, ways, mshrs] = GetParam();
  CacheConfig config;
  config.size_bytes = static_cast<uint32_t>(size_kb) * 1024;
  config.ways = static_cast<uint32_t>(ways);
  config.mshrs = static_cast<uint32_t>(mshrs);
  Harness h(config);
  const int requests = 200;
  uint32_t addr = 0x1234;
  for (int i = 0; i < requests; ++i) {
    addr = addr * 1664525u + 1013904223u;
    h.send(static_cast<uint64_t>(i), addr % (64 * 1024), (i % 3) == 0);
  }
  h.drain_until(requests);
  EXPECT_EQ(h.responses.size(), static_cast<size_t>(requests));
  // Every id delivered exactly once.
  std::vector<uint64_t> sorted = h.responses;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < requests; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], static_cast<uint64_t>(i));
  EXPECT_EQ(h.cache.stats().hits + h.cache.stats().misses, static_cast<uint64_t>(requests));
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 2, 4},
                                           std::tuple{4, 2, 2}, std::tuple{4, 4, 8},
                                           std::tuple{16, 2, 6}, std::tuple{16, 8, 16},
                                           std::tuple{64, 4, 4}));

TEST(MemStatsTest, EqualityOperator) {
  MemStats a, b;
  EXPECT_TRUE(a == b);
  a.hits = 3;
  EXPECT_FALSE(a == b);
  b.hits = 3;
  EXPECT_TRUE(a == b);
}

TEST(StackDistanceTest, ColdThenExactDistances) {
  StackDistance sd;
  EXPECT_EQ(sd.access(1), StackDistance::kCold);
  EXPECT_EQ(sd.access(2), StackDistance::kCold);
  EXPECT_EQ(sd.access(3), StackDistance::kCold);
  EXPECT_EQ(sd.access(1), 2u);  // lines 2 and 3 touched since
  EXPECT_EQ(sd.access(1), 0u);  // back-to-back reuse
  EXPECT_EQ(sd.access(3), 1u);  // only line 1 touched since
  EXPECT_EQ(sd.distinct_lines(), 3u);
}

TEST(StackDistanceTest, CompactionPreservesDistances) {
  // 900+ accesses over 3 lines exhaust the initial timestamp space several
  // times; distances must survive every in-place compaction.
  StackDistance sd;
  sd.access(10);
  sd.access(20);
  sd.access(30);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(sd.access(10), 2u) << "round " << i;
    ASSERT_EQ(sd.access(20), 2u) << "round " << i;
    ASSERT_EQ(sd.access(30), 2u) << "round " << i;
  }
  EXPECT_EQ(sd.distinct_lines(), 3u);
}

TEST(ReuseBucketTest, Log2BucketsWithSaturation) {
  EXPECT_EQ(reuse_bucket(0), 0u);
  EXPECT_EQ(reuse_bucket(1), 1u);
  EXPECT_EQ(reuse_bucket(2), 2u);
  EXPECT_EQ(reuse_bucket(3), 2u);
  EXPECT_EQ(reuse_bucket(4), 3u);
  EXPECT_EQ(reuse_bucket(1023), 10u);
  EXPECT_EQ(reuse_bucket(1024), 11u);
  EXPECT_EQ(reuse_bucket(~0ull >> 1), kReuseBuckets - 1);
}

TEST(CacheProfilerTest, ThreeCClassification) {
  CacheProfiler prof(4);  // shadow FA-LRU capacity: 4 lines
  EXPECT_EQ(prof.on_access(0, 0, true), MissClass::kCompulsory);
  EXPECT_EQ(prof.on_access(1, 0, true), MissClass::kCompulsory);
  // Distance 1 < 4: a same-size fully-associative cache would have hit.
  EXPECT_EQ(prof.on_access(0, 0, true), MissClass::kConflict);
  for (uint32_t line = 2; line <= 5; ++line) prof.on_access(line, 0, true);
  // Four distinct lines touched since the last access: distance >= capacity.
  EXPECT_EQ(prof.on_access(0, 0, true), MissClass::kCapacity);
  const CacheMemProfile p = prof.snapshot(0);
  EXPECT_EQ(p.classes.total(), p.misses);
  EXPECT_EQ(p.reuse_total(), p.accesses);
  EXPECT_EQ(p.classes.compulsory, 6u);
  EXPECT_EQ(p.classes.conflict, 1u);
  EXPECT_EQ(p.classes.capacity, 1u);
}

// The tentpole's exact-sum contracts against a real timed cache:
// compulsory + capacity + conflict == misses == MemStats::misses,
// cold + reuse histogram == accesses == hits + misses, and the by_tag
// attribution partitions the aggregate classes exactly.
TEST(CacheProfilerTest, ExactSumContractsMatchCacheStats) {
  CacheConfig config;
  config.size_bytes = 256;  // 16 lines: small enough to evict under the stream
  config.ways = 2;
  config.mshrs = 4;
  Harness h(config);
  h.cache.enable_memprof();
  ASSERT_TRUE(h.cache.memprof_enabled());
  uint32_t addr = 0x40;
  for (int i = 0; i < 300; ++i) {
    addr = addr * 1664525u + 1013904223u;
    h.send(static_cast<uint64_t>(i), addr % 4096, (i % 5) == 0);
    if (i % 3 == 0) h.tick(2);
  }
  h.drain_until(300);
  const CacheMemProfile p = h.cache.memprof_snapshot(h.cycle);
  EXPECT_EQ(p.misses, h.cache.stats().misses);
  EXPECT_EQ(p.classes.total(), p.misses);
  EXPECT_EQ(p.accesses, h.cache.stats().hits + h.cache.stats().misses);
  EXPECT_EQ(p.reuse_total(), p.accesses);
  EXPECT_GT(p.classes.conflict + p.classes.capacity, 0u);  // stream evicts
  MissClasses by_tag_sum;
  for (const auto& [tag, cls] : p.by_tag) by_tag_sum += cls;
  EXPECT_EQ(by_tag_sum, p.classes);
  // Time-weighted MSHR occupancy accounts for every cycle of the run.
  uint64_t occupancy_cycles = 0;
  for (const uint64_t c : p.mshr_cycles) occupancy_cycles += c;
  EXPECT_EQ(occupancy_cycles, h.cycle);
}

TEST(CacheProfilerTest, MergedMissInheritsPrimaryClass) {
  Harness h;
  h.cache.enable_memprof();
  while (!h.cache.can_accept()) h.tick();
  h.cache.send(MemRequest{.id = 1, .addr = 0x2000, .is_write = false, .pc = 0x100});
  h.tick();
  while (!h.cache.can_accept()) h.tick();
  h.cache.send(MemRequest{.id = 2, .addr = 0x2008, .is_write = false, .pc = 0x104});
  h.drain_until(2);
  ASSERT_EQ(h.cache.stats().mshr_merges, 1u);
  const CacheMemProfile p = h.cache.memprof_snapshot(h.cycle);
  EXPECT_EQ(p.misses, h.cache.stats().misses);
  // The secondary miss rides the primary's fill: it must inherit the
  // compulsory class, not be re-classified as a distance-0 conflict.
  EXPECT_EQ(p.classes.compulsory, 2u);
  EXPECT_EQ(p.classes.conflict, 0u);
  ASSERT_EQ(p.by_tag.size(), 2u);
  EXPECT_EQ(p.by_tag.at(0x100).compulsory, 1u);
  EXPECT_EQ(p.by_tag.at(0x104).compulsory, 1u);
}

TEST(CacheProfilerTest, ResetStatsClearsProfile) {
  Harness h;
  h.cache.enable_memprof();
  h.send(1, 0x1000);
  h.drain_until(1);
  h.cache.reset_stats();
  const CacheMemProfile p = h.cache.memprof_snapshot(h.cycle);
  EXPECT_EQ(p.accesses, 0u);
  EXPECT_EQ(p.misses, 0u);
  EXPECT_EQ(p.by_tag.size(), 0u);
}

TEST(ShadowCacheSimTest, ClassifiesConflictInDirectMappedStore) {
  ShadowCacheSim sim(4, 1);  // 4 sets, direct-mapped; shadow capacity 4 lines
  sim.access(0, 7);
  sim.access(4, 8);  // same set (4 % 4 == 0) evicts line 0 from the store
  sim.access(0, 7);  // distance 1 < 4: the FA shadow still holds it -> conflict
  const CacheMemProfile p = sim.profile();
  EXPECT_EQ(p.accesses, 3u);
  EXPECT_EQ(p.misses, 3u);
  EXPECT_EQ(p.classes.compulsory, 2u);
  EXPECT_EQ(p.classes.conflict, 1u);
  EXPECT_EQ(p.by_tag.at(7).conflict, 1u);
}

TEST(ShadowCacheSimTest, HitsAreNotMisclassified) {
  ShadowCacheSim sim(16, 2);
  sim.access(1, 0);
  sim.access(1, 0);  // hit: counted as an access, never as a miss
  const CacheMemProfile p = sim.profile();
  EXPECT_EQ(p.accesses, 2u);
  EXPECT_EQ(p.misses, 1u);
  EXPECT_EQ(p.reuse_total(), 2u);
}

TEST(DramTest, MemprofCountsRequestsAndOccupancyPerChannel) {
  DramModel dram(DramConfig{"test", 5, 2, 1, 32});  // 2 channels
  dram.enable_memprof();
  dram.set_trace_id(3);  // distinct counter-track name per cluster
  int responses = 0;
  dram.set_response_handler([&](uint64_t, bool) { ++responses; });
  uint64_t cycle = 0;
  dram.tick(cycle);
  int sent = 0;
  while (responses < 8 && cycle < 500) {
    if (sent < 8 && dram.can_accept()) {
      dram.send(MemRequest{.id = static_cast<uint64_t>(sent),
                           .addr = static_cast<uint32_t>(sent * 16),
                           .is_write = (sent % 2) == 1});
      ++sent;
    }
    dram.tick(++cycle);
  }
  ASSERT_EQ(responses, 8);
  const DramMemProfile p = dram.memprof_snapshot(cycle);
  ASSERT_EQ(p.channels.size(), 2u);
  EXPECT_EQ(p.total_requests(), 8u);
  // Line-interleaved addresses split evenly across the two channels.
  EXPECT_EQ(p.channels[0].requests(), 4u);
  EXPECT_EQ(p.channels[1].requests(), 4u);
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);
  uint64_t busy = 0;
  for (const auto& ch : p.channels) busy += ch.busy_cycles();
  EXPECT_GT(busy, 0u);
}

}  // namespace
}  // namespace fgpu::mem
