// Per-PC profiler tests: the exact-sum contract between the per-PC stall
// buckets and the aggregate PerfCounters, KIR source attribution through
// the compiler's line table, profile merging, and the annotated
// disassembly / hot-spot reports (see OBSERVABILITY.md "Profiles").
#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "common/log.hpp"
#include "kir/build.hpp"
#include "suite/runner.hpp"
#include "vortex/perf.hpp"
#include "vortex/profile.hpp"

namespace fgpu {
namespace {

TEST(PerfCounters, EqualityComparesAllFields) {
  vortex::PerfCounters a, b;
  EXPECT_EQ(a, b);
  b.stall_lsu = 1;
  EXPECT_FALSE(a == b);
  a.stall_lsu = 1;
  EXPECT_EQ(a, b);
}

TEST(PerfCounters, SummaryFitsReservationWithLargeCounters) {
  vortex::PerfCounters perf;
  // Force every numeric field near its widest rendering; summary() must not
  // have been sized for the small-number case (the reserve(256) bug).
  perf.cycles = perf.instrs = ~0ull;
  perf.stall_scoreboard = perf.stall_lsu = perf.stall_fu = ~0ull;
  perf.stall_ibuffer = perf.stall_barrier = perf.idle_cycles = ~0ull;
  perf.loads = perf.stores = perf.atomics = perf.branches = ~0ull;
  perf.divergent_branches = perf.joins = perf.barriers = perf.warps_spawned = ~0ull;
  const std::string text = perf.summary();
  EXPECT_GT(text.size(), 256u);
  EXPECT_NE(text.find("18446744073709551615"), std::string::npos);
}

TEST(PcStat, IssueRateAndTotals) {
  vortex::PcStat stat;
  EXPECT_EQ(stat.issue_rate(), 0.0);
  stat.issued = 3;
  stat.stall_lsu = 6;
  stat.stall_scoreboard = 3;
  EXPECT_EQ(stat.total_stalls(), 9u);
  EXPECT_DOUBLE_EQ(stat.issue_rate(), 0.25);
}

TEST(PcProfile, MergeSumsTablesElementWise) {
  vortex::PcProfile a, b;
  a.enabled = b.enabled = true;
  a.occupancy_interval = b.occupancy_interval = 64;
  a.by_pc[0x100].issued = 3;
  a.by_pc[0x100].stall_lsu = 2;
  b.by_pc[0x100].issued = 1;
  b.by_pc[0x104].stall_scoreboard = 5;
  a.occupancy.push_back({0, 1, 2, 3});
  a.occupancy.push_back({64, 2, 2, 2});
  b.occupancy.push_back({0, 4, 0, 1});
  a.l1d_set_conflicts = {1, 0};
  b.l1d_set_conflicts = {0, 7, 9};  // longer histogram grows the target

  a.merge(b);
  EXPECT_EQ(a.by_pc[0x100].issued, 4u);
  EXPECT_EQ(a.by_pc[0x100].stall_lsu, 2u);
  EXPECT_EQ(a.by_pc[0x104].stall_scoreboard, 5u);
  ASSERT_EQ(a.occupancy.size(), 2u);
  EXPECT_EQ(a.occupancy[0].ready, 5u);
  EXPECT_EQ(a.occupancy[0].idle, 4u);
  EXPECT_EQ(a.occupancy[1].ready, 2u);  // no partner sample: unchanged
  ASSERT_EQ(a.l1d_set_conflicts.size(), 3u);
  EXPECT_EQ(a.l1d_set_conflicts[0], 1u);
  EXPECT_EQ(a.l1d_set_conflicts[1], 7u);
  EXPECT_EQ(a.l1d_set_conflicts[2], 9u);

  const vortex::PcStat totals = a.totals();
  EXPECT_EQ(totals.issued, 4u);
  EXPECT_EQ(totals.stall_lsu, 2u);
  EXPECT_EQ(totals.stall_scoreboard, 5u);
}

// The compiler's PC -> KIR line table: every emitted word (including li/la
// expansions and the entry/dispatch scaffolding) carries a provenance
// string.
TEST(SourceMap, CompilerMapsEveryWord) {
  kir::KernelBuilder kb("vecadd");
  auto a = kb.buf_f32("a");
  auto b = kb.buf_f32("b");
  auto c = kb.buf_f32("c");
  auto count = kb.param_i32("count");
  auto gid = kb.global_id(0);
  kb.if_(gid < count, [&] { kb.store(c, gid, kb.load(a, gid) + kb.load(b, gid)); });

  auto compiled = codegen::compile_kernel(kb.build());
  ASSERT_TRUE(compiled.is_ok()) << compiled.status().to_string();
  const auto& map = compiled->source_map;
  ASSERT_FALSE(map.empty());
  ASSERT_EQ(map.word_source.size(), compiled->program.words.size());
  for (size_t i = 0; i < map.word_source.size(); ++i) {
    EXPECT_GE(map.word_source[i], 0) << "word " << i << " has no provenance";
    EXPECT_FALSE(map.source_for(i).empty()) << "word " << i;
  }
  // The scaffolding stages and the kernel body are all represented.
  const std::string all = [&] {
    std::string joined;
    for (const auto& s : map.sources) joined += s + "\n";
    return joined;
  }();
  EXPECT_NE(all.find("<entry:"), std::string::npos);
  EXPECT_NE(all.find("<dispatch:"), std::string::npos);
  EXPECT_NE(all.find("c["), std::string::npos);  // the store statement
}

// Acceptance criterion of the profiler PR: for every stall bucket, the sum
// over all PCs equals the aggregate PerfCounters total exactly — same
// increment site, not a sampled approximation.
TEST(Profiler, PerPcStallsSumExactlyToAggregateCounters) {
  Log::level() = LogLevel::kOff;
  suite::RunnerOptions options;
  options.filter = "^vecadd$";
  options.run_hls = false;
  options.capture_profile = true;
  auto result = suite::run_all(options);
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result->outcomes.size(), 1u);
  const auto& outcome = result->outcomes[0];
  ASSERT_TRUE(outcome.vortex.ok()) << outcome.vortex.fail_reason;
  ASSERT_EQ(outcome.vortex.kernel_profiles.size(), 1u);
  const suite::KernelProfile& kp = outcome.vortex.kernel_profiles[0];
  EXPECT_EQ(kp.kernel, "vecadd");
  EXPECT_EQ(kp.launches, 1u);
  EXPECT_FALSE(kp.profile.by_pc.empty());

  const vortex::PcStat totals = kp.profile.totals();
  EXPECT_EQ(totals.stall_scoreboard, kp.perf.stall_scoreboard);
  EXPECT_EQ(totals.stall_lsu, kp.perf.stall_lsu);
  EXPECT_EQ(totals.stall_fu, kp.perf.stall_fu);
  EXPECT_EQ(totals.stall_ibuffer, kp.perf.stall_ibuffer);
  EXPECT_EQ(totals.stall_barrier, kp.perf.stall_barrier);

  // Every profiled PC falls inside the loaded binary.
  for (const auto& [pc, stat] : kp.profile.by_pc) {
    EXPECT_GE(pc, kp.binary.base);
    EXPECT_LT(pc, kp.binary.base + kp.binary.words.size() * 4);
  }

  // The occupancy timeline was sampled and never reports more warp slots
  // than the config provides (4 cores x 8 warps by default).
  ASSERT_FALSE(kp.profile.occupancy.empty());
  EXPECT_GT(kp.profile.occupancy_interval, 0u);
  for (const auto& sample : kp.profile.occupancy) {
    EXPECT_LE(sample.ready + sample.blocked + sample.idle, 4u * 8u);
  }
}

// Fig. 7's LSU-stall narrative, localized: the hottest LSU-stall PC of
// vecadd must be one of its loads/stores, and both reports must say so
// with KIR provenance.
TEST(Profiler, HotspotAndAnnotatedReportsNameTheLsuBoundMemoryOp) {
  Log::level() = LogLevel::kOff;
  suite::RunnerOptions options;
  options.filter = "^vecadd$";
  options.run_hls = false;
  options.capture_profile = true;
  auto result = suite::run_all(options);
  ASSERT_TRUE(result.is_ok());
  const suite::KernelProfile& kp = result->outcomes[0].vortex.kernel_profiles[0];

  uint32_t top_pc = 0;
  uint64_t top_lsu = 0;
  for (const auto& [pc, stat] : kp.profile.by_pc) {
    if (stat.stall_lsu > top_lsu) {
      top_lsu = stat.stall_lsu;
      top_pc = pc;
    }
  }
  ASSERT_GT(top_lsu, 0u) << "vecadd is memory-bound; expected LSU stalls";
  const auto instr = arch::decode(kp.binary.words[(top_pc - kp.binary.base) / 4]);
  ASSERT_TRUE(instr.has_value());
  EXPECT_EQ(arch::op_info(instr->op).fu, arch::FuClass::kLsu)
      << "top LSU-stall PC decodes to " << arch::to_string(*instr);
  // Its provenance is the vecadd store statement (the load/store sequence).
  const std::string source = kp.source_map.source_for((top_pc - kp.binary.base) / 4);
  EXPECT_NE(source.find("c["), std::string::npos) << source;

  const std::string hotspots =
      vortex::hotspot_report(kp.binary, kp.source_map, kp.profile, 3);
  EXPECT_NE(hotspots.find("(lsu)"), std::string::npos);
  EXPECT_NE(hotspots.find("c["), std::string::npos);

  const std::string annotated =
      vortex::annotated_disassembly(kp.binary, kp.source_map, kp.profile);
  EXPECT_NE(annotated.find("issued"), std::string::npos);  // column header
  EXPECT_NE(annotated.find("# <entry:"), std::string::npos);
  char pc_text[16];
  std::snprintf(pc_text, sizeof(pc_text), "%08x:", top_pc);
  EXPECT_NE(annotated.find(pc_text), std::string::npos);
}

}  // namespace
}  // namespace fgpu
