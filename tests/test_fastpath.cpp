// Fast-path correctness tests for the simulator's host-throughput
// optimizations (ISSUE: decoded-instruction cache + event-driven idle
// skipping). The contract under test: these are HOST-SPEED features only —
// every reported cycle, stall bucket, and per-PC profile entry must be
// bit-identical with the fast paths on or off.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/log.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "suite/report.hpp"
#include "suite/runner.hpp"
#include "vasm/assembler.hpp"
#include "vortex/cluster.hpp"

namespace fgpu {
namespace {

// ---------------------------------------------------------------------------
// A/B: idle skipping off vs on over the benchmark suite
// ---------------------------------------------------------------------------

suite::RunnerOptions vortex_suite_options(bool idle_skip) {
  suite::RunnerOptions options;
  options.run_hls = false;  // idle skipping only affects the soft GPU
  options.capture_profile = true;
  options.vortex_config.idle_skip = idle_skip;
  return options;
}

TEST(IdleSkipTest, SuiteIsCycleExactWithSkippingOnAndOff) {
  Log::level() = LogLevel::kOff;
  const auto options_off = vortex_suite_options(false);
  const auto options_on = vortex_suite_options(true);
  auto off = suite::run_all(options_off);
  auto on = suite::run_all(options_on);
  ASSERT_TRUE(off.is_ok()) << off.status().to_string();
  ASSERT_TRUE(on.is_ok()) << on.status().to_string();
  ASSERT_EQ(off->outcomes.size(), on->outcomes.size());

  for (size_t i = 0; i < off->outcomes.size(); ++i) {
    const auto& a = off->outcomes[i];
    const auto& b = on->outcomes[i];
    ASSERT_EQ(a.name, b.name);
    EXPECT_EQ(a.vortex.ok(), b.vortex.ok()) << a.name;
    EXPECT_EQ(a.vortex.total_cycles, b.vortex.total_cycles) << a.name;
    EXPECT_EQ(a.vortex.total_instrs, b.vortex.total_instrs) << a.name;
    // Full PerfCounters equality: every stall bucket (including the idle
    // cycles that fast-forwarding attributes in bulk) must match the
    // cycle-by-cycle simulation exactly.
    EXPECT_TRUE(a.vortex.last.perf == b.vortex.last.perf) << a.name;
  }

  // Byte-identical exports: stats and the per-PC profile document. A
  // difference here means the fast path leaked into the reported schema.
  std::ostringstream stats_off, stats_on, prof_off, prof_on;
  suite::write_stats_json(stats_off, options_off, *off);
  suite::write_stats_json(stats_on, options_on, *on);
  EXPECT_EQ(stats_off.str(), stats_on.str());
  suite::write_profile_json(prof_off, options_off, *off);
  suite::write_profile_json(prof_on, options_on, *on);
  EXPECT_EQ(prof_off.str(), prof_on.str());
}

// ---------------------------------------------------------------------------
// Decode cache: cold/warm equivalence and invalidation on reset
// ---------------------------------------------------------------------------

constexpr const char* kLoopProgram = R"(
    li t0, 100
    li t1, 0
  loop:
    add t1, t1, t0
    addi t0, t0, -1
    bne t0, zero, loop
    li t2, 0x20000000
    sw t1, 0(t2)
    tmc zero
)";

TEST(DecodeCacheTest, WarmRefetchHitsAndResetInvalidates) {
  auto prog = vasm::assemble(kLoopProgram);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  mem::MainMemory memory;
  memory.write(prog->base, prog->words.data(), prog->size_bytes());
  vortex::Cluster cluster(vortex::Config::with(1, 4, 8), memory);

  auto first = cluster.run(prog->entry());
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const uint64_t fills1 = cluster.core(0).decode_cache_fills();
  const uint64_t hits1 = cluster.core(0).decode_cache_hits();
  // Every distinct PC decodes exactly once; the 100-iteration loop body
  // refetches the same PCs, which must be served from the decode cache.
  EXPECT_GT(fills1, 0u);
  EXPECT_GT(hits1, fills1);
  EXPECT_EQ(memory.load32(0x20000000), 5050u);  // sum 1..100

  // Second launch: reset() must invalidate the cache wholesale (the runtime
  // may rewrite the code region between launches), so the same program
  // fills the same number of entries again — and, with a warm host-side
  // cache being the only difference, reports identical cycles.
  auto second = cluster.run(prog->entry());
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(cluster.core(0).decode_cache_fills(), 2 * fills1);
  EXPECT_EQ(cluster.core(0).decode_cache_hits(), 2 * hits1);
  EXPECT_TRUE(first->perf == second->perf);
}

// ---------------------------------------------------------------------------
// next_event_cycle: the wake-up calculators idle skipping relies on
// ---------------------------------------------------------------------------

struct CacheHarness {
  mem::DramModel dram{mem::DramConfig::ddr4()};
  mem::Cache cache;
  std::vector<uint64_t> responses;
  uint64_t cycle = 0;

  CacheHarness() : cache(mem::CacheConfig{}, &dram) {
    cache.set_response_handler([this](uint64_t id, bool) { responses.push_back(id); });
  }

  void tick(int n = 1) {
    for (int i = 0; i < n; ++i) {
      dram.tick(cycle);
      cache.tick(cycle);
      ++cycle;
    }
  }
};

TEST(NextEventTest, IdleCacheReportsNoEvent) {
  CacheHarness h;
  h.tick(4);
  EXPECT_EQ(h.cache.next_event_cycle(), mem::kNoEvent);
  EXPECT_EQ(h.dram.next_event_cycle(), mem::kNoEvent);
}

TEST(NextEventTest, MissRetriesEveryCycleUntilFillSent) {
  CacheHarness h;
  h.tick();
  ASSERT_TRUE(h.cache.can_accept());
  h.cache.send(mem::MemRequest{.id = 1, .addr = 0x1000, .is_write = false});
  // The miss allocated an MSHR whose fill has not gone to DRAM yet: the
  // cache must be ticked next cycle (its send time depends on back-pressure
  // the calculator cannot predict).
  EXPECT_EQ(h.cache.next_event_cycle(), h.cycle);  // now_ + 1 == current loop cycle
}

TEST(NextEventTest, HitResponseMaturesExactlyAtPredictedCycle) {
  CacheHarness h;
  h.tick();
  h.cache.send(mem::MemRequest{.id = 1, .addr = 0x1000, .is_write = false});
  // Drive until the fill response lands (miss path). Once the fill request
  // is queued in DRAM, the pending event belongs to the DRAM, not the cache
  // (the response propagates back through on_lower_response without a cache
  // tick) — so the invariant, like the cluster's idle-skip wake-up, is over
  // the MINIMUM of both components' predictions: it must never lie later
  // than the cycle the next response actually fires.
  while (h.responses.empty()) {
    ASSERT_LT(h.cycle, 10000u);
    const uint64_t predicted =
        std::min(h.cache.next_event_cycle(), h.dram.next_event_cycle());
    ASSERT_NE(predicted, mem::kNoEvent);
    const size_t before = h.responses.size();
    h.tick();
    if (h.responses.size() > before) {
      EXPECT_GE(h.cycle - 1, predicted);
    }
  }
  // Quiesce, then hit the now-resident line: the prediction must equal the
  // exact maturity cycle of the hit response.
  h.tick(4);
  ASSERT_EQ(h.cache.next_event_cycle(), mem::kNoEvent);
  h.responses.clear();
  h.cache.send(mem::MemRequest{.id = 2, .addr = 0x1000, .is_write = false});
  const uint64_t predicted = h.cache.next_event_cycle();
  ASSERT_NE(predicted, mem::kNoEvent);
  while (h.responses.empty()) {
    ASSERT_LT(h.cycle, predicted + 10);
    h.tick();
  }
  EXPECT_EQ(h.cycle - 1, predicted);  // response fired on the predicted cycle
}

TEST(NextEventTest, DramFrontOfQueueIsTheEarliestEvent) {
  mem::DramModel dram{mem::DramConfig::ddr4()};
  std::vector<uint64_t> responses;
  dram.set_response_handler([&](uint64_t id, bool) { responses.push_back(id); });
  uint64_t cycle = 0;
  dram.tick(cycle++);
  ASSERT_TRUE(dram.can_accept());
  dram.send(mem::MemRequest{.id = 7, .addr = 0x2000, .is_write = false});
  const uint64_t predicted = dram.next_event_cycle();
  ASSERT_NE(predicted, mem::kNoEvent);
  while (responses.empty()) {
    ASSERT_LT(cycle, predicted + 10);
    dram.tick(cycle++);
  }
  EXPECT_EQ(cycle - 1, predicted);
  EXPECT_EQ(dram.next_event_cycle(), mem::kNoEvent);
}

}  // namespace
}  // namespace fgpu
